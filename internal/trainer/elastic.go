// Elastic crash–shrink–rejoin training: a supervisor loop above the rank
// goroutines that survives rank loss instead of discarding the run.
//
// The paper's schedule assumes a fixed world; production systems cannot
// (NestPipe-scale recommendation jobs amortize 1,500+ accelerators — a full
// restart per crash is unaffordable). The fault substrate already exists in
// layers below: crashes surface as attributed FaultErrors wrapping
// comm.ErrPeerDown, checkpoint v2 gives a CRC-sealed recovery source, and
// the AlltoAll's self-send elision means a surviving rank's resident state
// is exact. This file composes them into a world-epoch protocol:
//
//	epoch e trains  ──fault──▶  shrink: survivors restore their REMAPPED
//	    │                        shard of the last in-memory snapshot
//	    │                        (partition.ColumnWise.Remap + checkpoint.
//	    │                        ColumnShard), epoch e+1 trains on W-k ranks
//	  stop-to-rejoin ◀── stepped ctl handshake (rank 0 drives, serve-style)
//	    │
//	  epoch e+2: the recovered rank is readmitted (comm.Readmit clears its
//	  down markers), Communicators rebuild behind a barrier in a fresh tag
//	  plane (collective.WithEpoch), so stale frames of the dead world are
//	  never matched.
//
// Effective batch schedule is preserved by SkipBatches: epoch e+1 resumes
// each rank's data stream exactly where the snapshot left it, so the
// crash–shrink–rejoin trajectory is bit-identical (lossless path) to an
// uninterrupted run of the same segment schedule — the property the elastic
// chaos suite asserts across world sizes and seeds.
package trainer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/data"
	"embrace/internal/metrics"
	"embrace/internal/partition"
	"embrace/internal/strategies"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// ElasticJob configures a supervised elastic run.
type ElasticJob struct {
	Job
	// CheckpointEvery is the in-memory snapshot cadence in steps: every
	// N-th step boundary gathers the full embedding and clones the trunk,
	// bounding fault rollback to N-1 steps. Zero picks DefaultCheckpointEvery.
	CheckpointEvery int
	// MaxRecoveries bounds how many faults the supervisor absorbs before
	// giving up and returning the partial result with the error. Zero picks
	// DefaultMaxRecoveries.
	MaxRecoveries int
	// Rejoin readmits recovered ranks: after a shrink, the shrunk world
	// stops at a ctl boundary (RejoinAfter steps in) and the next epoch
	// runs at full size again, with the recovered rank restored from the
	// stop snapshot like everyone else.
	Rejoin bool
	// RejoinAfter is how many steps the shrunk world trains before stopping
	// to readmit; zero picks the checkpoint cadence.
	RejoinAfter int
	// Clock times fault-to-recovery latency. Nil picks trace.NewWallClock()
	// — the injection point that keeps this package free of time.Now, per
	// the determinism analyzer; tests inject a counter.
	Clock trace.Clock
}

// Defaults for elastic knobs left zero.
const (
	DefaultCheckpointEvery = 5
	DefaultMaxRecoveries   = 2
)

// Epoch outcomes recorded in EpochInfo.End.
const (
	// EpochCompleted: the epoch trained to the job's last step.
	EpochCompleted = "completed"
	// EpochFault: the epoch died on an attributed fault; the supervisor
	// rolled back to the epoch's last snapshot and shrunk the world.
	EpochFault = "fault"
	// EpochRejoin: the epoch stopped at a ctl boundary so the next epoch
	// could readmit recovered ranks at full world size.
	EpochRejoin = "rejoin"
)

// EpochInfo describes one world epoch of an elastic run: which ranks ran,
// which global steps it contributed to the stitched trajectory, how it
// ended, and — when it follows a world transition — what the transition
// moved and how long it took.
type EpochInfo struct {
	// Epoch numbers the world rebuild; epoch 0 is the original world.
	Epoch int
	// Workers is the epoch's world size.
	Workers int
	// StartStep and EndStep bound the global steps [StartStep, EndStep)
	// this epoch contributed to the final trajectory. A faulted epoch
	// contributes only up to its last snapshot; the steps it trained past
	// it were rolled back (their tokens still count in TokensTrained).
	StartStep, EndStep int
	// End is how the epoch ended: EpochCompleted, EpochFault or EpochRejoin.
	End string
	// Fault is the first attributed fault of a faulted epoch; nil otherwise.
	Fault *FaultError
	// Crashed lists the ranks lost to the fault (old-world numbering).
	Crashed []int
	// Moves is the shard remap applied ENTERING this epoch (column spans
	// for EmbRace; empty for replicated-table strategies and for epoch 0).
	// From == To spans stayed resident on their surviving rank.
	Moves []partition.ShardMove
	// RecoverySeconds is the wall time from the previous epoch's end (fault
	// detected, or rejoin stop) to this epoch's world barrier — detection
	// to resumed-traffic latency. Zero for epoch 0.
	RecoverySeconds float64
}

// ElasticResult is a Result plus the supervisor's epoch segmentation.
type ElasticResult struct {
	Result
	// Epochs records every world epoch in order.
	Epochs []EpochInfo
	// Recoveries counts the faults absorbed.
	Recoveries int
}

// FaultErrors collects every attributed *FaultError in err's tree (the
// joined per-rank errors of a failed run), in traversal order. Callers pick
// the fault they care about — the supervisor wants any crashed rank's, a
// test wants a specific rank's — without re-implementing the unwrap walk.
func FaultErrors(err error) []*FaultError {
	var out []*FaultError
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if fe, ok := e.(*FaultError); ok {
			out = append(out, fe)
			return
		}
		switch x := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range x.Unwrap() {
				walk(c)
			}
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		}
	}
	walk(err)
	return out
}

// CrashPlan builds the seeded chaos plan of the elastic suites: rank
// `victim` crashes on its first send of training step `step`'s token gather
// (the opening wire operation of an EmbRace step), over the standard
// maskable background noise drawn from seed. The crash rule leads the rule
// list so noise cannot swallow the targeted send; the tag predicate pins it
// to epoch 0, so a readmitted victim cannot re-crash on a rebuilt world's
// tags.
func CrashPlan(seed int64, victim, step int) (comm.FaultPlan, error) {
	tag, err := collective.TagOf(strategies.OpTokens, step)
	if err != nil {
		return comm.FaultPlan{}, err
	}
	crash := comm.Rule(comm.FaultCrash, 1)
	crash.From = victim
	crash.Match = func(pt comm.FaultPoint) bool { return pt.Tag == tag }
	plan := comm.MaskableChaosPlan(seed)
	plan.Rules = append([]comm.FaultRule{crash}, plan.Rules...)
	return plan, nil
}

// validate extends Job.Validate with the elastic constraints.
func (j ElasticJob) validate() error {
	if err := j.Job.Validate(); err != nil {
		return err
	}
	if j.OverTCP {
		return fmt.Errorf("trainer: elastic supervision rebuilds in-process worlds; drop OverTCP")
	}
	if j.Trace {
		return fmt.Errorf("trainer: elastic supervision does not record traces; drop Trace")
	}
	switch j.Strategy {
	case strategies.Parallax, strategies.BytePS:
		return fmt.Errorf("trainer: %s pins shared parameter servers to a fixed world; elastic supervision supports the collective strategies", j.Strategy)
	}
	return nil
}

// RunElastic executes the job under the elastic supervisor. On a fault it
// shrinks the world and resumes from the last snapshot; with Rejoin it
// later readmits recovered ranks. The returned ElasticResult is non-nil
// even when the final error is — like Run, recorded progress is salvage,
// not waste.
func RunElastic(job ElasticJob) (*ElasticResult, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	ckptEvery := job.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = DefaultCheckpointEvery
	}
	maxRec := job.MaxRecoveries
	if maxRec <= 0 {
		maxRec = DefaultMaxRecoveries
	}
	clock := job.Clock
	if clock == nil {
		clock = trace.NewWallClock()
	}

	res := &ElasticResult{Result: Result{
		Losses:     make([]float64, job.Steps),
		Accuracies: make([]float64, job.Steps),
	}}

	// The epoch-0 chaos world outlives its epoch: a full-size rejoin epoch
	// reuses it (readmitting the crashed rank) so stale in-flight frames of
	// the dead epoch are really present — and really ignored, because the
	// rebuilt Communicators tag in a fresh epoch plane.
	var chaosW *comm.ChaosWorld
	defer func() {
		if chaosW != nil {
			chaosW.Close()
		}
	}()

	workers := job.Workers
	done := 0 // global steps locked into the stitched trajectory
	var base *checkpoint.Checkpoint
	stopAfter := 0
	var transitionAt time.Duration
	var pendingMoves []partition.ShardMove
	inTransition := false

	for epoch := 0; ; epoch++ {
		spec := epochSpec{
			job:       job.Job,
			epoch:     epoch,
			workers:   workers,
			stepBase:  done,
			ckptEvery: ckptEvery,
			stopAfter: stopAfter,
			base:      base,
			clock:     clock,
		}
		out := runEpoch(spec, &chaosW)

		res.Comm = res.Comm.Add(out.res.Comm)
		res.addCommPerOp(out.res.CommPerOp)
		res.TokensTrained += out.res.TokensTrained

		info := EpochInfo{Epoch: epoch, Workers: workers, StartStep: done}
		if inTransition {
			info.RecoverySeconds = (out.readyAt - transitionAt).Seconds()
			info.Moves = pendingMoves
			inTransition, pendingMoves = false, nil
		}

		switch {
		case out.err == nil && !out.stopped:
			copy(res.Losses[done:], out.res.Losses)
			copy(res.Accuracies[done:], out.res.Accuracies)
			res.Embedding = out.res.Embedding
			res.Trunk = out.res.Trunk
			info.EndStep = job.Steps
			info.End = EpochCompleted
			res.Epochs = append(res.Epochs, info)
			return res, nil

		case out.err == nil: // stopped at a ctl boundary to readmit
			snap := out.snaps[len(out.snaps)-1]
			copy(res.Losses[done:done+snap.steps], out.res.Losses[:snap.steps])
			copy(res.Accuracies[done:done+snap.steps], out.res.Accuracies[:snap.steps])
			done += snap.steps
			base = snap.ckpt
			info.EndStep = done
			info.End = EpochRejoin
			res.Epochs = append(res.Epochs, info)
			pendingMoves = remapFor(job.Job, workers, job.Workers)
			transitionAt = clock()
			inTransition = true
			workers = job.Workers
			stopAfter = 0

		default: // fault
			faults := FaultErrors(out.err)
			if len(faults) == 0 {
				// Logic or configuration error, not a transport fault:
				// nothing a world rebuild can fix.
				res.Epochs = append(res.Epochs, info)
				return res, out.err
			}
			res.Recoveries++
			keep := 0
			if len(out.snaps) > 0 {
				snap := out.snaps[len(out.snaps)-1]
				keep = snap.steps
				base = snap.ckpt
			}
			copy(res.Losses[done:done+keep], out.res.Losses[:keep])
			copy(res.Accuracies[done:done+keep], out.res.Accuracies[:keep])
			done += keep
			info.EndStep = done
			info.End = EpochFault
			info.Crashed = out.crashed
			info.Fault = pickFault(faults, out.crashed)
			res.Epochs = append(res.Epochs, info)
			if res.Recoveries > maxRec {
				return res, fmt.Errorf("trainer: elastic recovery budget (%d) exhausted: %w", maxRec, out.err)
			}
			newWorkers := workers - len(out.crashed)
			if len(out.crashed) == 0 {
				// Fault without an identified crash (a timeout, a bare
				// WrapChaos partition): retry at the same size — the world
				// rebuild itself clears wedged transport state.
				newWorkers = workers
			}
			if newWorkers < 1 {
				return res, fmt.Errorf("trainer: every rank crashed: %w", out.err)
			}
			if err := job.Model.Validate(newWorkers); err != nil {
				return res, fmt.Errorf("trainer: cannot shrink world %d -> %d: %w", workers, newWorkers, err)
			}
			pendingMoves = remapFor(job.Job, workers, newWorkers)
			transitionAt = clock()
			inTransition = true
			if job.Rejoin && newWorkers < job.Workers {
				stopAfter = job.RejoinAfter
				if stopAfter <= 0 {
					stopAfter = ckptEvery
				}
			}
			workers = newWorkers
		}
	}
}

// remapFor plans the shard movement of a world resize: EmbRace's column
// shards follow partition.ColumnWise; the replicated-table strategies move
// nothing (every survivor already holds the full table).
func remapFor(job Job, oldN, newN int) []partition.ShardMove {
	if oldN == newN || job.Strategy != strategies.EmbRace {
		return nil
	}
	return partition.ColumnWise{}.Remap(job.Model.EmbDim, oldN, newN)
}

// pickFault prefers a crashed rank's attributed fault (the root cause) over
// a survivor's secondary ErrPeerDown observation.
func pickFault(faults []*FaultError, crashed []int) *FaultError {
	for _, fe := range faults {
		for _, r := range crashed {
			if fe.Rank == r {
				return fe
			}
		}
	}
	return faults[0]
}

// ---------------------------------------------------------------------------
// One world epoch.
// ---------------------------------------------------------------------------

// Ctl ops of the world-epoch protocol. The barrier is the pending-pointer
// handoff moment (serve.Reload's shape): every rank has built its worker —
// remapped shard restored — before any step traffic flows.
const (
	opElasticBarrier = "elastic/world"
	opElasticCtl     = "elastic/ctl"
)

// Stepped ctl decisions rank 0 sends at every step boundary.
const (
	ctlContinue   = 0
	ctlCheckpoint = 1
	ctlStop       = 2
)

type epochSpec struct {
	job       Job
	epoch     int
	workers   int
	stepBase  int // global steps already locked in before this epoch
	ckptEvery int
	stopAfter int // >0: stop at the first boundary >= this many epoch steps
	base      *checkpoint.Checkpoint
	clock     trace.Clock
}

// snapshotRec is one in-memory checkpoint taken at an epoch step boundary.
type snapshotRec struct {
	steps int // epoch-local steps the snapshot covers
	ckpt  *checkpoint.Checkpoint
}

type epochOutcome struct {
	res     *Result
	snaps   []snapshotRec
	stopped bool
	crashed []int
	readyAt time.Duration // clock() when rank 0 cleared the world barrier
	err     error
}

// runEpoch runs one world epoch: builds (or reuses) the fabric, spawns the
// rank goroutines, and joins their errors. The chaos world is created once
// at epoch 0 and reused for full-size epochs (rejoin readmits the crashed
// ranks on it); shrunk epochs get a fresh clean world, since a world's size
// is fixed at construction.
func runEpoch(spec epochSpec, chaosW **comm.ChaosWorld) *epochOutcome {
	n := spec.workers
	steps := spec.job.Steps - spec.stepBase
	out := &epochOutcome{res: &Result{
		Losses:     make([]float64, steps),
		Accuracies: make([]float64, steps),
	}}
	shared, err := strategies.NewShared(spec.job.Strategy, spec.job.Model, n)
	if err != nil {
		out.err = err
		return out
	}

	transports := make([]comm.Transport, n)
	crashedFn := func() []int { return nil }
	switch {
	case spec.job.Chaos != nil && spec.epoch == 0:
		cw, err := comm.NewChaosWorld(n, *spec.job.Chaos)
		if err != nil {
			out.err = err
			return out
		}
		*chaosW = cw // supervisor owns its lifetime
		for i := range transports {
			transports[i] = cw.Rank(i)
		}
		crashedFn = cw.Crashed
	case *chaosW != nil && n == (*chaosW).Size():
		// Full-size epoch over the original chaos world: readmit every
		// rank (survivors left during the cascade too), keep the plan's
		// maskable noise flowing, and let the fresh epoch plane shield the
		// rebuilt collectives from the dead epoch's stale frames.
		cw := *chaosW
		for i := 0; i < n; i++ {
			cw.Readmit(i)
		}
		for i := range transports {
			transports[i] = cw.Rank(i)
		}
		crashedFn = cw.Crashed
	default:
		w, err := comm.NewWorld(n)
		if err != nil {
			out.err = err
			return out
		}
		defer w.Close()
		for i := range transports {
			transports[i] = w.Rank(i)
		}
	}

	var mu sync.Mutex
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = elasticRank(spec, transports[i], shared, out, &mu)
		}(i)
	}
	wg.Wait()
	out.err = errors.Join(errs...)
	out.crashed = crashedFn()
	return out
}

// elasticRank is runRank's elastic counterpart: timeout, loop, Leave on
// failure so the cascade stays clean.
func elasticRank(spec epochSpec, raw comm.Transport, shared *strategies.Shared, out *epochOutcome, mu *sync.Mutex) error {
	if spec.job.RecvTimeout > 0 {
		if ts, ok := raw.(comm.TimeoutSetter); ok {
			ts.SetRecvTimeout(spec.job.RecvTimeout)
		}
	}
	err := elasticRankLoop(spec, raw, shared, out, mu)
	if err != nil {
		if l, ok := raw.(comm.Leaver); ok {
			l.Leave(err)
		}
	}
	return err
}

func elasticRankLoop(spec epochSpec, raw comm.Transport, shared *strategies.Shared, out *epochOutcome, mu *sync.Mutex) error {
	rec := metrics.NewOpRecorder()
	cm := collective.NewCommunicator(raw,
		collective.WithChunkBytes(chunkBytesOf(spec.job.ChunkBytes)),
		collective.WithObserver(rec),
		collective.WithEpoch(spec.epoch))
	defer func() {
		mu.Lock()
		out.res.Comm = out.res.Comm.Add(rec.Total())
		out.res.addCommPerOp(rec.PerOp())
		mu.Unlock()
	}()

	// Per-rank restore. EmbRace ranks slice exactly their new columns out
	// of the snapshot (checkpoint.ColumnShard follows the same ColumnWise
	// tiling the remap plan describes); replicated-table strategies restore
	// the full table. Trunk parameters warm-start everywhere.
	cfg := spec.job.Model
	var opts []strategies.WorkerOption
	if spec.base != nil {
		cfg.InitTrunk = trunkParamsOf(spec.base)
		if spec.job.Strategy == strategies.EmbRace {
			shard, err := spec.base.ColumnShard("emb", cm.Size(), cm.Rank())
			if err != nil {
				return fmt.Errorf("rank %d: restoring remapped shard: %w", cm.Rank(), err)
			}
			opts = append(opts, strategies.WithEmbShard(shard))
		} else {
			cfg.InitEmbedding = spec.base.Params["emb"]
		}
	}
	w, err := strategies.NewWorker(spec.job.Strategy, cm, cfg, shared, opts...)
	if err != nil {
		return err
	}

	// The world barrier: no rank's step traffic flows until every rank has
	// stood up its restored worker in the new epoch plane.
	if err := cm.Barrier(opElasticBarrier, 0); err != nil {
		return attribute(cm.Rank(), -1, "world barrier", err)
	}
	if cm.Rank() == 0 {
		mu.Lock()
		out.readyAt = spec.clock()
		mu.Unlock()
	}

	gen, err := data.NewGenerator(spec.job.Data, spec.job.DataSeed+int64(cm.Rank()))
	if err != nil {
		return err
	}
	loader := data.NewLoader(gen)
	for skip := 0; skip < spec.job.SkipBatches+spec.stepBase; skip++ {
		loader.Next()
	}

	steps := spec.job.Steps - spec.stepBase
	for s := 0; s < steps; s++ {
		gStep := spec.stepBase + s // attribution in global step numbers
		batch := loader.Next()
		next := loader.Peek()
		windows, targets := WindowsTargets(batch, spec.job.Window)
		stats, err := w.Step(s, windows, targets, next.Tokens())
		if err != nil {
			return attribute(cm.Rank(), gStep, "train step", err)
		}
		all, err := collective.GatherVia(cm, strategies.OpStats, s, 0, stats)
		if err != nil {
			return attribute(cm.Rank(), gStep, "stats gather", err)
		}
		if cm.Rank() == 0 {
			var sum float64
			correct, count := 0, 0
			for _, st := range all {
				sum += st.Loss
				correct += st.Correct
				count += st.Count
			}
			mu.Lock()
			out.res.Losses[s] = sum / float64(len(all))
			if count > 0 {
				out.res.Accuracies[s] = float64(correct) / float64(count)
			}
			mu.Unlock()
		}
		mu.Lock()
		out.res.TokensTrained += batch.NonPad
		mu.Unlock()

		// The stepped ctl handshake: rank 0 decides the boundary's fate
		// from shared counters and sends the verdict point-to-point;
		// followers obey what they receive — the driver/follower shape of
		// serve's reload protocol, one decision per step boundary.
		done := s + 1
		decision := ctlContinue
		if cm.Rank() == 0 {
			decision = boundaryDecision(done, steps, spec.ckptEvery, spec.stopAfter)
			for p := 1; p < cm.Size(); p++ {
				if err := cm.Send(opElasticCtl, s, p, decision); err != nil {
					return attribute(cm.Rank(), gStep, "ctl handshake", err)
				}
			}
		} else {
			v, err := cm.Recv(opElasticCtl, s, 0)
			if err != nil {
				return attribute(cm.Rank(), gStep, "ctl handshake", err)
			}
			d, ok := v.(int)
			if !ok {
				return fmt.Errorf("rank %d: ctl payload %T, want int", cm.Rank(), v)
			}
			decision = d
		}
		if decision == ctlContinue {
			continue
		}
		// Snapshot: FullEmbedding is collective (EmbRace gathers shards;
		// it also harvests the in-flight delayed exchange first, which the
		// next step would have applied before any other mutation anyway —
		// the reason snapshot boundaries stay bit-exact under Sched2D).
		emb, err := w.FullEmbedding()
		if err != nil {
			return attribute(cm.Rank(), gStep, "checkpoint gather", err)
		}
		if cm.Rank() == 0 {
			ckpt := snapshotCheckpoint(spec.job.SkipBatches+spec.stepBase+done, emb, w)
			mu.Lock()
			out.snaps = append(out.snaps, snapshotRec{steps: done, ckpt: ckpt})
			if decision == ctlStop {
				out.stopped = true
			}
			mu.Unlock()
		}
		if decision == ctlStop {
			return nil
		}
	}

	emb, err := w.FullEmbedding()
	if err != nil {
		return attribute(cm.Rank(), -1, "final embedding", err)
	}
	if cm.Rank() == 0 {
		mu.Lock()
		out.res.Embedding = emb
		out.res.Trunk = w.Trunk()
		mu.Unlock()
	}
	return nil
}

// boundaryDecision is rank 0's per-boundary verdict: stop (to readmit)
// beats checkpoint, and the epoch's final boundary always continues — the
// natural end of the loop gathers final state instead.
func boundaryDecision(done, steps, every, stopAfter int) int {
	if done >= steps {
		return ctlContinue
	}
	if stopAfter > 0 && done >= stopAfter {
		return ctlStop
	}
	if every > 0 && done%every == 0 {
		return ctlCheckpoint
	}
	return ctlContinue
}

// snapshotCheckpoint seals one boundary's state. Everything is cloned: the
// epoch keeps training on the live tensors the moment the boundary passes.
func snapshotCheckpoint(step int, emb *tensor.Dense, w strategies.Worker) *checkpoint.Checkpoint {
	params := map[string]*tensor.Dense{"emb": emb.Clone()}
	for _, p := range w.Trunk().Params() {
		params[p.Name] = p.Tensor.Clone()
	}
	return &checkpoint.Checkpoint{Step: step, Params: params}
}

// trunkParamsOf extracts the trunk warm-start map from a snapshot.
func trunkParamsOf(c *checkpoint.Checkpoint) map[string]*tensor.Dense {
	out := make(map[string]*tensor.Dense, len(c.Params))
	for name, p := range c.Params {
		if name != "emb" {
			out[name] = p
		}
	}
	return out
}
