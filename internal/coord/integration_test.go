package coord

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

// The §5.1 mechanism end to end: backward-pass hooks announce gradients as
// they become ready (at different times on different ranks), the negotiated
// dispatch order drives REAL collectives, and everything completes without
// deadlock with the results of a plain synchronous execution.
//
// This is exactly the scenario where naive per-rank priority queues deadlock:
// rank A's queue might hold {dense-3} while rank B's holds {emb-prior}, and
// each would enter a different collective first. The coordinator guarantees
// both enter the same one.
func TestNegotiatedOrderDrivesRealCollectives(t *testing.T) {
	const n = 4
	const elems = 256

	type gradOp struct {
		op   Op
		kind string // "allreduce" | "alltoall"
	}
	ops := []gradOp{
		{Op{ID: "emb-prior", Priority: 0}, "alltoall"},
		{Op{ID: "dense-0", Priority: 100}, "allreduce"},
		{Op{ID: "dense-1", Priority: 101}, "allreduce"},
		{Op{ID: "dense-2", Priority: 102}, "allreduce"},
		{Op{ID: "emb-delayed", Priority: 1 << 20}, "alltoall"},
	}
	byID := map[string]gradOp{}
	for _, g := range ops {
		byID[g.op.ID] = g
	}

	sums := make([][]float32, n)
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		cm := collective.NewCommunicator(tr)
		c, err := NewOn(cm, "bp", len(ops))
		if err != nil {
			return err
		}
		// Producer: the "backward pass" announces gradients in a rank-
		// dependent order with jitter, like real BP completions.
		go func() {
			rng := rand.New(rand.NewSource(int64(tr.Rank() * 7)))
			perm := rng.Perm(len(ops))
			for _, i := range perm {
				time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
				_ = c.Announce(ops[i].op)
			}
		}()

		// Consumer: the "communication thread" executes each dispatched op
		// as a real collective. The Communicator keeps streams apart by
		// logical op name — no hand-numbered tags.
		total := make([]float32, elems)
		for {
			id, ok, err := c.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			g := byID[id]
			switch g.kind {
			case "allreduce":
				buf := make([]float32, elems)
				for i := range buf {
					buf[i] = float32(tr.Rank() + 1)
				}
				if err := cm.AllReduce("grad/"+id, 0, buf); err != nil {
					return fmt.Errorf("%s: %w", id, err)
				}
				for i := range total {
					total[i] += buf[i]
				}
			case "alltoall":
				send := make([][]float32, n)
				for p := range send {
					send[p] = []float32{float32(tr.Rank())}
				}
				got, err := collective.AllToAllVia(cm, "grad/"+id, 0, send)
				if err != nil {
					return fmt.Errorf("%s: %w", id, err)
				}
				var s float32
				for _, v := range got {
					s += v[0]
				}
				for i := range total {
					total[i] += s
				}
			}
		}
		sums[tr.Rank()] = total
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every rank must have identical results: 3 allreduces each summing to
	// n(n+1)/2 plus 2 alltoalls each contributing sum(0..n-1).
	want := float32(3*n*(n+1)/2 + 2*n*(n-1)/2)
	for r := range sums {
		for i, v := range sums[r] {
			if v != want {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, v, want)
			}
		}
	}
}

// Without negotiation, adversarial local orders WOULD mix collectives; with
// it, the dispatch order is identical across ranks even under the race-prone
// TCP transport.
func TestNegotiatedOrderIdenticalOverTCP(t *testing.T) {
	const n = 3
	ops := make([]Op, 6)
	for i := range ops {
		ops[i] = Op{ID: fmt.Sprintf("g%d", i), Priority: (7 * i) % 4}
	}
	orders := make([][]string, n)
	var mu sync.Mutex
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		c, err := NewOn(collective.NewCommunicator(tr), "tcp-order", len(ops))
		if err != nil {
			return err
		}
		go func() {
			perm := rand.New(rand.NewSource(int64(tr.Rank()))).Perm(len(ops))
			for _, i := range perm {
				_ = c.Announce(ops[i])
			}
		}()
		order, err := drain(c)
		if err != nil {
			return err
		}
		mu.Lock()
		orders[tr.Rank()] = order
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		for i := range orders[0] {
			if orders[r][i] != orders[0][i] {
				t.Fatalf("rank %d diverged: %v vs %v", r, orders[r], orders[0])
			}
		}
	}
}
