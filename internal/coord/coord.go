// Package coord implements Horovod-style tensor negotiation, the mechanism
// that makes a cross-rank priority queue safe.
//
// The hazard: collectives are symmetric — every rank must execute the same
// operations in the same order — but with wait-free backpropagation each
// rank's gradients become ready at slightly different times. If every rank
// independently popped its own priority queue, two ranks could pop different
// operations first and deadlock inside the collectives. Horovod solves this
// with a coordinator running negotiation cycles, and EmbRace's communication
// thread (§5.1) inherits the scheme.
//
// The protocol here follows Horovod's cycles: backward-pass hooks Announce
// ready operations into a local buffer (never blocking on the network); the
// consumer drains Next, and each time its local dispatch queue runs dry a
// negotiation round runs — every rank ships its newly-ready batch to rank 0,
// which dispatches every operation now ready on all ranks, ordered by
// priority. All ranks therefore execute an identical, priority-respecting,
// deadlock-free order.
package coord

import (
	"fmt"
	"sort"
	"sync"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

// Op identifies one negotiable operation.
type Op struct {
	// ID names the operation; all ranks must use identical ids for the
	// same logical collective.
	ID string
	// Priority orders fully-ready operations; lower dispatches sooner.
	Priority int
}

// batchMsg is one rank's newly-ready announcements for a round.
type batchMsg struct {
	Ops []Op
}

// responseMsg is the coordinator's round outcome.
type responseMsg struct {
	// IDs are dispatched operations, in global execution order.
	IDs []string
	// Done signals that all expected operations have been dispatched.
	Done bool
}

func init() {
	comm.RegisterWireType(batchMsg{})
	comm.RegisterWireType(responseMsg{})
}

// Coordinator negotiates the execution order of `expected` operations per
// rank. One instance exists per rank; rank 0 doubles as the server.
//
// Announce may be called from any goroutine (typically backward hooks); Next
// must be called from a single consumer goroutine.
type Coordinator struct {
	cm *collective.Communicator
	// opBatch and opResponse name the negotiation channels in the
	// Communicator tag space. Rounds reuse the same pair: the transport's
	// per-(sender, tag) FIFO keeps successive rounds ordered.
	opBatch, opResponse string
	expected            int

	mu        sync.Mutex
	cond      *sync.Cond
	buffer    []Op
	announced int

	queue      []string
	done       bool
	dispatched int // rank-0: ops dispatched so far

	// rank-0 negotiation state
	counts map[string]*pendingOp
	seq    int
}

type pendingOp struct {
	op    Op
	count int
	seq   int
}

// NewOn creates the per-rank coordinator endpoint on a Communicator. `name`
// distinguishes concurrent coordinators (each gets its own pair of logical
// ops in cm's tag space). Every rank will announce exactly `expected`
// operations over the coordinator's lifetime.
func NewOn(cm *collective.Communicator, name string, expected int) (*Coordinator, error) {
	if expected < 0 {
		return nil, fmt.Errorf("coord: negative expected count %d", expected)
	}
	c := &Coordinator{
		cm:         cm,
		opBatch:    "coord/" + name + "/batch",
		opResponse: "coord/" + name + "/response",
		expected:   expected,
	}
	c.cond = sync.NewCond(&c.mu)
	if cm.Rank() == 0 {
		c.counts = make(map[string]*pendingOp, expected)
	}
	return c, nil
}

// Announce registers a locally ready operation. It never blocks on the
// network; the next negotiation round carries it to the coordinator.
func (c *Coordinator) Announce(op Op) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.announced >= c.expected {
		return fmt.Errorf("coord: rank %d announced more than %d ops", c.cm.Rank(), c.expected)
	}
	c.announced++
	c.buffer = append(c.buffer, op)
	c.cond.Broadcast()
	return nil
}

// takeBatch waits until there is something to contribute to a round — a
// buffered announcement, or the knowledge that this rank has announced
// everything (an empty batch keeps the round protocol moving).
func (c *Coordinator) takeBatch() []Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.buffer) == 0 && c.announced < c.expected {
		c.cond.Wait()
	}
	batch := c.buffer
	c.buffer = nil
	return batch
}

// Next blocks until the next globally agreed operation id is available and
// returns it. ok=false signals that all expected operations have been
// dispatched on every rank.
func (c *Coordinator) Next() (string, bool, error) {
	for {
		if len(c.queue) > 0 {
			id := c.queue[0]
			c.queue = c.queue[1:]
			return id, true, nil
		}
		if c.done {
			return "", false, nil
		}
		if err := c.round(); err != nil {
			return "", false, err
		}
	}
}

// round runs one negotiation cycle.
func (c *Coordinator) round() error {
	batch := c.takeBatch()
	if c.cm.Rank() != 0 {
		if err := c.cm.Send(c.opBatch, 0, 0, batchMsg{Ops: batch}); err != nil {
			return fmt.Errorf("coord: send batch: %w", err)
		}
		payload, err := c.cm.Recv(c.opResponse, 0, 0)
		if err != nil {
			return fmt.Errorf("coord: await response: %w", err)
		}
		resp := payload.(responseMsg)
		c.queue = append(c.queue, resp.IDs...)
		c.done = resp.Done
		return nil
	}

	// Rank 0: absorb own batch plus one batch from every peer.
	n := c.cm.Size()
	allEmpty := len(batch) == 0
	c.note(batch)
	for p := 1; p < n; p++ {
		payload, err := c.cm.Recv(c.opBatch, 0, p)
		if err != nil {
			return fmt.Errorf("coord: recv batch from %d: %w", p, err)
		}
		ops := payload.(batchMsg).Ops
		allEmpty = allEmpty && len(ops) == 0
		c.note(ops)
	}

	// Dispatch everything now ready on all ranks, by priority.
	var ready []*pendingOp
	for _, p := range c.counts {
		if p.count == n {
			ready = append(ready, p)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].op.Priority != ready[j].op.Priority {
			return ready[i].op.Priority < ready[j].op.Priority
		}
		return ready[i].seq < ready[j].seq
	})
	resp := responseMsg{}
	for _, p := range ready {
		resp.IDs = append(resp.IDs, p.op.ID)
		delete(c.counts, p.op.ID)
	}
	c.dispatched += len(resp.IDs)
	resp.Done = c.dispatched == c.expected

	// A rank only sends an empty batch once it has announced everything,
	// so a fully empty round that dispatches nothing means the ranks
	// announced mismatched op ids. Terminate the peers and report it.
	var mismatch error
	if allEmpty && len(resp.IDs) == 0 && !resp.Done {
		resp.Done = true
		mismatch = fmt.Errorf("coord: negotiation stuck with %d ops never ready on all ranks (mismatched ids?)", len(c.counts))
	}

	for p := 1; p < n; p++ {
		if err := c.cm.Send(c.opResponse, 0, p, resp); err != nil {
			return fmt.Errorf("coord: send response to %d: %w", p, err)
		}
	}
	c.queue = append(c.queue, resp.IDs...)
	c.done = resp.Done
	return mismatch
}

// note merges a rank's batch into the readiness counts.
func (c *Coordinator) note(ops []Op) {
	for _, op := range ops {
		p, ok := c.counts[op.ID]
		if !ok {
			p = &pendingOp{op: op, seq: c.seq}
			c.seq++
			c.counts[op.ID] = p
		}
		p.count++
	}
}

// Run drains the negotiation to completion, invoking exec for every
// dispatched op id in the agreed order — the consumer loop of §5.1's
// communication thread. It stops on the first exec or protocol error.
func (c *Coordinator) Run(exec func(id string) error) error {
	for {
		id, ok, err := c.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := exec(id); err != nil {
			return fmt.Errorf("coord: executing %q: %w", id, err)
		}
	}
}
