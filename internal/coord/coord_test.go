package coord

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

// newTest builds a coordinator endpoint over a throwaway Communicator, the
// shape every production caller uses via NewOn.
func newTest(tr comm.Transport, expected int) (*Coordinator, error) {
	return NewOn(collective.NewCommunicator(tr), "test", expected)
}

// drain runs the consumer loop: collects the dispatched order.
func drain(c *Coordinator) ([]string, error) {
	var order []string
	for {
		id, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return order, nil
		}
		order = append(order, id)
	}
}

func TestNewValidation(t *testing.T) {
	err := comm.RunRanks(1, func(tr comm.Transport) error {
		if _, err := newTest(tr, -1); err == nil {
			return fmt.Errorf("expected error for negative expected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllRanksSeeSameOrder(t *testing.T) {
	const n = 4
	ops := []Op{
		{ID: "emb-prior", Priority: 0},
		{ID: "dense-0", Priority: 100},
		{ID: "dense-1", Priority: 101},
		{ID: "emb-delayed", Priority: 1 << 20},
	}
	orders := make([][]string, n)
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c, err := newTest(tr, len(ops))
		if err != nil {
			return err
		}
		// Producer goroutine announces in a rank-dependent order with
		// rank-dependent delays, like gradients becoming ready at
		// different times on different workers.
		go func() {
			rng := rand.New(rand.NewSource(int64(tr.Rank())))
			perm := rng.Perm(len(ops))
			for _, i := range perm {
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				_ = c.Announce(ops[i])
			}
		}()
		order, err := drain(c)
		if err != nil {
			return err
		}
		orders[tr.Rank()] = order
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if len(orders[r]) != len(ops) {
			t.Fatalf("rank %d saw %d ops", r, len(orders[r]))
		}
		for i := range orders[0] {
			if orders[r][i] != orders[0][i] {
				t.Fatalf("rank %d order %v != rank 0 order %v", r, orders[r], orders[0])
			}
		}
	}
}

func TestPriorityRespectedWhenAllReady(t *testing.T) {
	// All ops announced before draining: dispatch order must be priority
	// order.
	const n = 3
	ops := []Op{
		{ID: "c", Priority: 30},
		{ID: "a", Priority: 10},
		{ID: "b", Priority: 20},
	}
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c, err := newTest(tr, len(ops))
		if err != nil {
			return err
		}
		for _, op := range ops {
			if err := c.Announce(op); err != nil {
				return err
			}
		}
		order, err := drain(c)
		if err != nil {
			return err
		}
		want := []string{"a", "b", "c"}
		for i := range want {
			if order[i] != want[i] {
				return fmt.Errorf("rank %d order %v", tr.Rank(), order)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverAnnounceRejected(t *testing.T) {
	err := comm.RunRanks(1, func(tr comm.Transport) error {
		c, err := newTest(tr, 1)
		if err != nil {
			return err
		}
		if err := c.Announce(Op{ID: "x"}); err != nil {
			return err
		}
		if err := c.Announce(Op{ID: "y"}); err == nil {
			return fmt.Errorf("expected over-announce error")
		}
		// Drain the one legitimate op.
		order, err := drain(c)
		if err != nil {
			return err
		}
		if len(order) != 1 || order[0] != "x" {
			return fmt.Errorf("order %v", order)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroExpectedTerminatesImmediately(t *testing.T) {
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		c, err := newTest(tr, 0)
		if err != nil {
			return err
		}
		order, err := drain(c)
		if err != nil {
			return err
		}
		if len(order) != 0 {
			return fmt.Errorf("order %v", order)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: for random op sets, priorities and world sizes, every rank sees
// the same dispatch order, the order is a permutation of the op set, and no
// op is dispatched before every rank has announced it (implied by protocol
// but asserted via causality: a rank that delays one announcement delays
// that op's dispatch past the announcement).
func TestNegotiationConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		k := 1 + rng.Intn(8)
		ops := make([]Op, k)
		for i := range ops {
			ops[i] = Op{ID: fmt.Sprintf("op-%d", i), Priority: rng.Intn(5)}
		}
		orders := make([][]string, n)
		var mu sync.Mutex
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			c, err := newTest(tr, k)
			if err != nil {
				return err
			}
			go func() {
				perm := rand.New(rand.NewSource(seed + int64(tr.Rank()))).Perm(k)
				for _, i := range perm {
					_ = c.Announce(ops[i])
				}
			}()
			order, err := drain(c)
			if err != nil {
				return err
			}
			mu.Lock()
			orders[tr.Rank()] = order
			mu.Unlock()
			return nil
		})
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		for _, id := range orders[0] {
			if seen[id] {
				return false // duplicate dispatch
			}
			seen[id] = true
		}
		if len(seen) != k {
			return false
		}
		for r := 1; r < n; r++ {
			for i := range orders[0] {
				if orders[r][i] != orders[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiationOverTCP(t *testing.T) {
	const n = 3
	ops := []Op{{ID: "g1", Priority: 2}, {ID: "g2", Priority: 1}}
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		c, err := newTest(tr, len(ops))
		if err != nil {
			return err
		}
		go func() {
			for _, op := range ops {
				_ = c.Announce(op)
			}
		}()
		order, err := drain(c)
		if err != nil {
			return err
		}
		if len(order) != 2 {
			return fmt.Errorf("order %v", order)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedIDsDetected(t *testing.T) {
	// Ranks announce different op ids: the negotiation can never complete,
	// and the coordinator must detect it instead of hanging.
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		c, err := newTest(tr, 1)
		if err != nil {
			return err
		}
		if err := c.Announce(Op{ID: fmt.Sprintf("only-rank-%d", tr.Rank())}); err != nil {
			return err
		}
		_, err = drain(c)
		if tr.Rank() == 0 {
			if err == nil {
				return fmt.Errorf("coordinator should report the mismatch")
			}
			return nil
		}
		// Peers are terminated cleanly.
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoundsPipelineEarlyOps(t *testing.T) {
	// An op ready on all ranks early must dispatch before ops announced
	// later — the consumer can start executing while producers continue.
	const n = 2
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c, err := newTest(tr, 2)
		if err != nil {
			return err
		}
		if err := c.Announce(Op{ID: "early", Priority: 5}); err != nil {
			return err
		}
		id, ok, err := c.Next()
		if err != nil || !ok || id != "early" {
			return fmt.Errorf("first dispatch = %q ok=%v err=%v", id, ok, err)
		}
		// Announce the second op only after the first dispatched.
		if err := c.Announce(Op{ID: "late", Priority: 0}); err != nil {
			return err
		}
		id, ok, err = c.Next()
		if err != nil || !ok || id != "late" {
			return fmt.Errorf("second dispatch = %q ok=%v err=%v", id, ok, err)
		}
		if _, ok, _ := c.Next(); ok {
			return fmt.Errorf("expected done")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunExecutesAllInOrder(t *testing.T) {
	ops := []Op{{ID: "b", Priority: 2}, {ID: "a", Priority: 1}}
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		c, err := newTest(tr, len(ops))
		if err != nil {
			return err
		}
		for _, op := range ops {
			if err := c.Announce(op); err != nil {
				return err
			}
		}
		var got []string
		if err := c.Run(func(id string) error {
			got = append(got, id)
			return nil
		}); err != nil {
			return err
		}
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			return fmt.Errorf("order %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunStopsOnExecError(t *testing.T) {
	err := comm.RunRanks(1, func(tr comm.Transport) error {
		c, err := newTest(tr, 1)
		if err != nil {
			return err
		}
		if err := c.Announce(Op{ID: "x"}); err != nil {
			return err
		}
		err = c.Run(func(string) error { return fmt.Errorf("exec boom") })
		if err == nil {
			return fmt.Errorf("expected exec error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
