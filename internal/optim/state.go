package optim

import (
	"fmt"

	"embrace/internal/tensor"
)

// State is a serializable snapshot of one optimizer's internal state, used
// by the checkpoint package. The parameter tensor itself is checkpointed
// separately; State carries only what the optimizer adds.
type State struct {
	// Kind discriminates the optimizer type ("sgd", "adagrad", "adam").
	Kind string
	// Accum is Adagrad's squared-gradient accumulator.
	Accum *tensor.Dense
	// M and V are Adam's first and second moments; Step its counter.
	M, V *tensor.Dense
	Step int
}

// Snapshot captures an optimizer's state. The returned tensors are deep
// copies, safe to serialize while training continues.
func Snapshot(o Optimizer) (State, error) {
	switch v := o.(type) {
	case *SGD:
		return State{Kind: "sgd"}, nil
	case *Adagrad:
		return State{Kind: "adagrad", Accum: v.accum.Clone()}, nil
	case *Adam:
		return State{Kind: "adam", M: v.m.Clone(), V: v.v.Clone(), Step: v.step}, nil
	default:
		return State{}, fmt.Errorf("optim: cannot snapshot %T", o)
	}
}

// Restore loads a snapshot back into an optimizer of the matching kind and
// shape. The optimizer must already be bound to its parameter tensor.
func Restore(o Optimizer, s State) error {
	switch v := o.(type) {
	case *SGD:
		if s.Kind != "sgd" {
			return fmt.Errorf("optim: restoring %q state into SGD", s.Kind)
		}
		return nil
	case *Adagrad:
		if s.Kind != "adagrad" {
			return fmt.Errorf("optim: restoring %q state into Adagrad", s.Kind)
		}
		if s.Accum == nil || s.Accum.Len() != v.accum.Len() {
			return fmt.Errorf("optim: adagrad accumulator shape mismatch")
		}
		copy(v.accum.Data(), s.Accum.Data())
		return nil
	case *Adam:
		if s.Kind != "adam" {
			return fmt.Errorf("optim: restoring %q state into Adam", s.Kind)
		}
		if s.M == nil || s.V == nil || s.M.Len() != v.m.Len() || s.V.Len() != v.v.Len() {
			return fmt.Errorf("optim: adam moment shape mismatch")
		}
		copy(v.m.Data(), s.M.Data())
		copy(v.v.Data(), s.V.Data())
		v.step = s.Step
		return nil
	default:
		return fmt.Errorf("optim: cannot restore into %T", o)
	}
}
