package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"embrace/internal/tensor"
)

func randSparse(rng *rand.Rand, rows, dim, nnz int) *tensor.Sparse {
	idx := make([]int64, nnz)
	vals := make([]float32, nnz*dim)
	for i := range idx {
		idx[i] = int64(rng.Intn(rows))
	}
	for i := range vals {
		vals[i] = rng.Float32()*2 - 1
	}
	s, _ := tensor.NewSparse(rows, dim, idx, vals)
	return s
}

func TestSGDDense(t *testing.T) {
	p, _ := tensor.FromSlice([]float32{1, 2, 3}, 3)
	g, _ := tensor.FromSlice([]float32{1, 1, 1}, 3)
	o := NewSGD(p, 0.1)
	if err := o.StepDense(g); err != nil {
		t.Fatal(err)
	}
	want := []float32{0.9, 1.9, 2.9}
	for i, v := range p.Data() {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Fatalf("p[%d] = %v, want %v", i, v, want[i])
		}
	}
	bad := tensor.NewDense(4)
	if err := o.StepDense(bad); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSGDSparseEqualsDense(t *testing.T) {
	// A sparse update must equal the dense update of the scattered gradient.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, dim := 10, 3
		pd := tensor.RandDense(rng, 1, rows, dim)
		ps := pd.Clone()
		g := randSparse(rng, rows, dim, 1+rng.Intn(15))
		if err := NewSGD(pd, 0.05).StepDense(g.ToDense()); err != nil {
			return false
		}
		if err := NewSGD(ps, 0.05).StepSparse(g); err != nil {
			return false
		}
		return pd.AllClose(ps, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdagradAccumulates(t *testing.T) {
	p := tensor.Full(1, 2)
	o := NewAdagrad(p, 0.1, 1e-10)
	g, _ := tensor.FromSlice([]float32{1, 0}, 2)
	if err := o.StepDense(g); err != nil {
		t.Fatal(err)
	}
	// First step with g=1: p -= 0.1*1/sqrt(1) = 0.1.
	if math.Abs(float64(p.Data()[0])-0.9) > 1e-5 {
		t.Fatalf("p[0] = %v", p.Data()[0])
	}
	if p.Data()[1] != 1 {
		t.Fatal("zero gradient must not move the parameter")
	}
	if err := o.StepDense(g); err != nil {
		t.Fatal(err)
	}
	// Second step: accum=2, update 0.1/sqrt(2) ≈ 0.0707.
	if math.Abs(float64(p.Data()[0])-(0.9-0.1/math.Sqrt2)) > 1e-5 {
		t.Fatalf("p[0] after 2 steps = %v", p.Data()[0])
	}
}

func TestAdagradSparseEqualsDenseOnTouchedRows(t *testing.T) {
	// Adagrad is element-wise, so sparse(rows) == dense(scattered) as long
	// as untouched rows have zero gradient (which scattering guarantees).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, dim := 8, 2
		pd := tensor.RandDense(rng, 1, rows, dim)
		ps := pd.Clone()
		od := NewAdagrad(pd, 0.1, 1e-10)
		os := NewAdagrad(ps, 0.1, 1e-10)
		for k := 0; k < 4; k++ {
			g := randSparse(rng, rows, dim, 1+rng.Intn(10))
			if err := od.StepDense(g.ToDense()); err != nil {
				return false
			}
			if err := os.StepSparse(g); err != nil {
				return false
			}
		}
		return pd.AllClose(ps, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamDenseMatchesReference(t *testing.T) {
	// One Adam step from zero state with g: m=(1-β1)g, v=(1-β2)g².
	// update = lr * sqrt(1-β2)/(1-β1) * m / (sqrt(v)+eps)
	p := tensor.Full(0, 1)
	o := NewAdam(p, 0.001, 0.9, 0.999, 1e-8)
	g, _ := tensor.FromSlice([]float32{2}, 1)
	if err := o.StepDense(g); err != nil {
		t.Fatal(err)
	}
	m := 0.1 * 2.0
	v := 0.001 * 4.0
	lr := 0.001 * math.Sqrt(1-0.999) / (1 - 0.9)
	want := -lr * m / (math.Sqrt(v) + 1e-8)
	if math.Abs(float64(p.Data()[0])-want) > 1e-7 {
		t.Fatalf("p = %v, want %v", p.Data()[0], want)
	}
	if o.Step() != 1 {
		t.Fatalf("step = %d", o.Step())
	}
}

func TestAdamSparseLazyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := tensor.RandDense(rng, 1, 6, 2)
	before := p.Clone()
	o := NewAdamDefault(p, 0.01)
	g, _ := tensor.NewSparse(6, 2, []int64{2}, []float32{1, -1})
	if err := o.StepSparse(g); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		changed := !pRowEqual(p, before, r)
		if r == 2 && !changed {
			t.Fatal("touched row must change")
		}
		if r != 2 && changed {
			t.Fatalf("untouched row %d changed", r)
		}
	}
}

func pRowEqual(a, b *tensor.Dense, r int) bool {
	ra, rb := a.Row(r), b.Row(r)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// The §5.7 property: applying a coalesced gradient as disjoint prior and
// delayed parts through StepSparsePartial must be bit-identical to applying
// the whole gradient in a single StepSparse, across many iterations.
func TestModifiedAdamSplitEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, dim := 12, 3
		pWhole := tensor.RandDense(rng, 1, rows, dim)
		pSplit := pWhole.Clone()
		oWhole := NewAdamDefault(pWhole, 0.01)
		oSplit := NewAdamDefault(pSplit, 0.01)
		for it := 0; it < 6; it++ {
			g := randSparse(rng, rows, dim, 1+rng.Intn(20)).Coalesce()
			var prior []int64
			for _, ix := range g.Indices {
				if rng.Intn(2) == 0 {
					prior = append(prior, ix) // Indices sorted: prior stays sorted
				}
			}
			gp, gd := g.Partition(prior)
			if err := oWhole.StepSparse(g); err != nil {
				return false
			}
			if err := oSplit.StepSparsePartial(gp, false); err != nil {
				return false
			}
			if err := oSplit.StepSparsePartial(gd, true); err != nil {
				return false
			}
			if oWhole.Step() != oSplit.Step() {
				return false
			}
		}
		return pWhole.AllClose(pSplit, 0) // bit-identical, not just close
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Without the modification (advancing the step on both parts), the split
// diverges from the whole update — demonstrating why §5.7 is needed.
func TestUnmodifiedSplitDiverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, dim := 10, 2
	pWhole := tensor.RandDense(rng, 1, rows, dim)
	pSplit := pWhole.Clone()
	oWhole := NewAdamDefault(pWhole, 0.01)
	oSplit := NewAdamDefault(pSplit, 0.01)
	for it := 0; it < 5; it++ {
		g := randSparse(rng, rows, dim, 12).Coalesce()
		var prior []int64
		for i, ix := range g.Indices {
			if i%2 == 0 {
				prior = append(prior, ix)
			}
		}
		gp, gd := g.Partition(prior)
		if err := oWhole.StepSparse(g); err != nil {
			t.Fatal(err)
		}
		// Naive: both parts advance the step (two optimizer calls).
		if err := oSplit.StepSparse(gp); err != nil {
			t.Fatal(err)
		}
		if err := oSplit.StepSparse(gd); err != nil {
			t.Fatal(err)
		}
	}
	if pWhole.AllClose(pSplit, 1e-9) {
		t.Fatal("naive split should diverge from whole update")
	}
}

func TestAdamShapeValidation(t *testing.T) {
	p := tensor.NewDense(4, 2)
	o := NewAdamDefault(p, 0.01)
	badDense := tensor.NewDense(5)
	if err := o.StepDense(badDense); err == nil {
		t.Fatal("expected dense shape error")
	}
	badSparse, _ := tensor.NewSparse(4, 3, []int64{0}, []float32{1, 2, 3})
	if err := o.StepSparse(badSparse); err == nil {
		t.Fatal("expected sparse shape error")
	}
}
