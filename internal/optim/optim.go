// Package optim implements the optimizers the paper trains with: SGD,
// Adagrad and Adam, each with a dense update and a sparse row update for
// embedding gradients.
//
// It also implements the paper's §5.7 Adam modification. Vertical Sparse
// Scheduling applies each embedding gradient in two parts (prior rows before
// the next forward pass, delayed rows later). SGD and Adagrad are fully
// element-wise, so two partial updates equal one whole update; Adam is
// element-wise except its global step counter, which feeds the bias
// correction. StepSparsePartial therefore advances the step only when the
// final (delayed) part is applied, making the split bit-identical to a whole
// update — the property TestModifiedAdamSplitEquivalence verifies.
package optim

import (
	"fmt"
	"math"

	"embrace/internal/tensor"
)

// Optimizer updates one parameter tensor from dense or row-sparse gradients.
// An optimizer instance is bound to a single parameter, carrying any state
// (momenta, accumulators) it needs.
type Optimizer interface {
	// StepDense applies a full dense gradient.
	StepDense(grad *tensor.Dense) error
	// StepSparse applies a row-sparse gradient as one whole update. The
	// gradient is coalesced internally if needed.
	StepSparse(grad *tensor.Sparse) error
}

func checkDense(param, grad *tensor.Dense) error {
	if param.Len() != grad.Len() {
		return fmt.Errorf("optim: grad shape %v != param shape %v", grad.Shape(), param.Shape())
	}
	return nil
}

func checkSparse(param *tensor.Dense, grad *tensor.Sparse) error {
	if param.Dims() != 2 || param.Dim(0) != grad.NumRows || param.Dim(1) != grad.Dim {
		return fmt.Errorf("optim: sparse grad [%d x %d] incompatible with param %v",
			grad.NumRows, grad.Dim, param.Shape())
	}
	return nil
}

// ---------------------------------------------------------------------------
// SGD
// ---------------------------------------------------------------------------

// SGD is plain stochastic gradient descent: p -= lr * g. It is stateless and
// fully element-wise, so split sparse updates are trivially exact.
type SGD struct {
	param *tensor.Dense
	lr    float32
}

// NewSGD binds an SGD optimizer to param.
func NewSGD(param *tensor.Dense, lr float32) *SGD {
	return &SGD{param: param, lr: lr}
}

func (o *SGD) StepDense(grad *tensor.Dense) error {
	if err := checkDense(o.param, grad); err != nil {
		return err
	}
	return o.param.AXPY(-o.lr, grad)
}

func (o *SGD) StepSparse(grad *tensor.Sparse) error {
	if err := checkSparse(o.param, grad); err != nil {
		return err
	}
	grad.Coalesce().AddToDense(o.param, -o.lr)
	return nil
}

// ---------------------------------------------------------------------------
// Adagrad
// ---------------------------------------------------------------------------

// Adagrad keeps a per-element sum of squared gradients and scales the
// learning rate by its square root (Duchi et al., 2011). Like SGD it is
// fully element-wise (§5.7).
type Adagrad struct {
	param *tensor.Dense
	accum *tensor.Dense
	lr    float32
	eps   float32
}

// NewAdagrad binds an Adagrad optimizer to param.
func NewAdagrad(param *tensor.Dense, lr, eps float32) *Adagrad {
	return &Adagrad{
		param: param,
		accum: tensor.NewDense(param.Shape()...),
		lr:    lr,
		eps:   eps,
	}
}

func (o *Adagrad) updateElem(i int, g float32) {
	acc := o.accum.Data()
	acc[i] += g * g
	o.param.Data()[i] -= o.lr * g / (float32(math.Sqrt(float64(acc[i]))) + o.eps)
}

func (o *Adagrad) StepDense(grad *tensor.Dense) error {
	if err := checkDense(o.param, grad); err != nil {
		return err
	}
	for i, g := range grad.Data() {
		o.updateElem(i, g)
	}
	return nil
}

func (o *Adagrad) StepSparse(grad *tensor.Sparse) error {
	if err := checkSparse(o.param, grad); err != nil {
		return err
	}
	c := grad.Coalesce()
	for r, ix := range c.Indices {
		base := int(ix) * c.Dim
		row := c.Row(r)
		for j, g := range row {
			o.updateElem(base+j, g)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

// Adam implements Kingma & Ba with lazy sparse row updates: only the rows
// present in a sparse gradient update their momenta, as PyTorch's SparseAdam
// does. The bias correction depends on the global step counter, the one
// non-element-wise piece of state §5.7 discusses.
type Adam struct {
	param *tensor.Dense
	m     *tensor.Dense
	v     *tensor.Dense
	lr    float32
	beta1 float32
	beta2 float32
	eps   float32
	step  int
}

// NewAdam binds an Adam optimizer to param with the usual hyperparameters.
func NewAdam(param *tensor.Dense, lr, beta1, beta2, eps float32) *Adam {
	return &Adam{
		param: param,
		m:     tensor.NewDense(param.Shape()...),
		v:     tensor.NewDense(param.Shape()...),
		lr:    lr,
		beta1: beta1,
		beta2: beta2,
		eps:   eps,
	}
}

// NewAdamDefault binds Adam with the paper-era defaults
// (lr, β1=0.9, β2=0.999, ε=1e-8).
func NewAdamDefault(param *tensor.Dense, lr float32) *Adam {
	return NewAdam(param, lr, 0.9, 0.999, 1e-8)
}

// Step returns the number of completed optimization steps.
func (o *Adam) Step() int { return o.step }

func (o *Adam) updateElem(i int, g float32, stepLR float32) {
	md, vd := o.m.Data(), o.v.Data()
	md[i] = o.beta1*md[i] + (1-o.beta1)*g
	vd[i] = o.beta2*vd[i] + (1-o.beta2)*g*g
	o.param.Data()[i] -= stepLR * md[i] / (float32(math.Sqrt(float64(vd[i]))) + o.eps)
}

// stepLR folds the bias corrections of step t into the learning rate.
func (o *Adam) stepLR(step int) float32 {
	bc1 := 1 - math.Pow(float64(o.beta1), float64(step))
	bc2 := 1 - math.Pow(float64(o.beta2), float64(step))
	return o.lr * float32(math.Sqrt(bc2)/bc1)
}

func (o *Adam) StepDense(grad *tensor.Dense) error {
	if err := checkDense(o.param, grad); err != nil {
		return err
	}
	o.step++
	lr := o.stepLR(o.step)
	for i, g := range grad.Data() {
		o.updateElem(i, g, lr)
	}
	return nil
}

func (o *Adam) StepSparse(grad *tensor.Sparse) error {
	return o.StepSparsePartial(grad, true)
}

// StepSparsePartial applies one part of a split sparse gradient. The parts
// of one logical iteration must cover disjoint rows (Sparse.Partition
// guarantees this); every part uses the same step number for bias
// correction, and only the call with final=true advances the counter — the
// paper's Adam modification (§5.7).
func (o *Adam) StepSparsePartial(grad *tensor.Sparse, final bool) error {
	if err := checkSparse(o.param, grad); err != nil {
		return err
	}
	step := o.step + 1 // logical step shared by all parts of this iteration
	lr := o.stepLR(step)
	c := grad.Coalesce()
	for r, ix := range c.Indices {
		base := int(ix) * c.Dim
		row := c.Row(r)
		for j, g := range row {
			o.updateElem(base+j, g, lr)
		}
	}
	if final {
		o.step = step
	}
	return nil
}

// Compile-time interface checks.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adagrad)(nil)
	_ Optimizer = (*Adam)(nil)
)
