// Package analysistest runs an analyzer over fixture packages and matches
// its diagnostics against `// want` expectations, mirroring the workflow of
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under <testdata>/src/<importpath>/, a miniature GOPATH: a
// fixture that imports "embrace/internal/comm" resolves to the stub package
// at testdata/src/embrace/internal/comm, never to the real repo, so analyzer
// tests stay hermetic. Expectations annotate the offending line:
//
//	collective.RingAllReduce(t, 1, buf) // want `legacy tag-based`
//
// Each `// want` comment holds one or more quoted or backquoted regular
// expressions, every one of which must match a diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations with no
// matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"embrace/internal/analysis"
)

// TestData returns the canonical fixture root, ./testdata, as an absolute
// path.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

// Run loads each fixture package under testdata/src, applies the analyzer,
// and checks its diagnostics against the fixtures' want expectations.
//
// All named fixtures are pooled into one program before any is checked, so
// interprocedural analyzers see contract comments and function bodies of
// stub dependency packages listed alongside the fixture that imports them
// (the loader's dependency typechecking strips both). Findings suppressed
// by justified directives are not matched against wants — fixtures assert
// what a user of the tool would see.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader([]analysis.Root{{Prefix: "", Dir: filepath.Join(testdata, "src")}})
	var units []*analysis.Package
	for _, path := range paths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		loaded, err := loader.LoadDir(dir, path, true)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		if len(loaded) == 0 {
			t.Errorf("fixture %s holds no Go package", path)
			continue
		}
		units = append(units, loaded...)
	}
	runner := analysis.NewRunner([]*analysis.Analyzer{a}, loader.Fset, units)
	for _, unit := range units {
		diags, err := runner.Check(unit)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, unit.Path, err)
			continue
		}
		surviving := diags[:0:0]
		for _, d := range diags {
			if !d.Suppressed {
				surviving = append(surviving, d)
			}
		}
		match(t, loader.Fset, unit, surviving)
	}
}

// expectation is one want-regexp on one line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

func match(t *testing.T, fset *token.FileSet, unit *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range unit.Files {
		wants = append(wants, parseWants(t, fset, f)...)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// parseWants extracts `// want "rx" ...` expectations from a file.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			rxs, err := parsePatterns(text)
			if err != nil {
				t.Errorf("%s: bad want comment: %v", pos, err)
				continue
			}
			for _, rx := range rxs {
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	return out
}

// parsePatterns reads a sequence of Go string literals (quoted or
// backquoted) and compiles each as a regexp.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		var lit string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, s = s[:end+1], s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit, s = s[:end+2], s[end+2:]
		default:
			return nil, fmt.Errorf("expected string literal at %q", s)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %w", lit, err)
		}
		rx, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %w", lit, err)
		}
		out = append(out, rx)
	}
	return out, nil
}
