package arenalife_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/arenalife"
)

func TestArenaLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), arenalife.Analyzer,
		"embrace/internal/tensor", "embrace/internal/collective", "a")
}
