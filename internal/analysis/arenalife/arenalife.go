// Package arenalife polices the lifetime of arena- and pool-backed memory.
//
// The zero-alloc hot path works by handing out views of reusable storage:
// SparseShards.ShardView and Merged return slices of the exchange arena,
// getBuf/getBufI64 lend pooled wire buffers, RowBucketer accessors expose
// bucketing scratch. Every such value has an expiry the compiler cannot
// see — the next exchange into the arena, the putBuf returning the buffer,
// the next Bucket call — and code that lets a view outlive its boundary
// reads recycled memory.
//
// The contract is declared where the memory is lent, in doc-comment
// directives:
//
//	//embrace:arena                 function results are arena-backed views
//	//embrace:arena <param>...      the named pointer params become views
//	//embrace:arena reuse <name>    calling this recycles <name>'s arena
//	                                (<name> a param, or the receiver)
//	//embrace:arena                 on a type: values of the type are arenas;
//	                                functions returning one must be annotated
//
// Views derived from contract calls are tracked through assignments,
// slicing, field access, and `aliases:`-documented accessors (the sliceret
// contract), and a finding is reported when a view:
//
//   - is stored into a struct field, map/slice element, or package variable
//   - is returned from a function not itself marked //embrace:arena
//   - is captured by a closure or goroutine
//   - is passed to a callee whose corresponding parameter escapes
//     (escape summaries propagate through the call graph)
//   - is used after a `reuse` boundary recycled its arena in the same
//     function (straight-line source order; loop back-edges are not modeled)
//
// Justified exceptions: //embrace:allow arenalife <why the value is dead or
// copied before the boundary>.
package arenalife

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"embrace/internal/analysis"
)

// Directive introduces an arena contract in a doc comment.
const Directive = "//embrace:arena"

const ns = "arenalife"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name:      "arenalife",
	Doc:       "track arena/pool-backed views declared by //embrace:arena contracts and report flows that outlive their reuse boundary",
	Summarize: summarize,
	Finish:    finish,
	Run:       run,
}

// contract is the parsed //embrace:arena declaration of one function.
type contract struct {
	// source marks the function's results as arena-backed views.
	source bool
	// out lists parameter indices the call turns into views.
	out []int
	// reuse lists parameters (or -1 for the receiver) whose arena the call
	// recycles, invalidating outstanding views.
	reuse []int
}

// escEdge records that parameter `param` flows into argument `arg` of
// `callee` — the conduit transitive escape propagates through.
type escEdge struct {
	param  int
	callee string
	arg    int
}

// escapeInfo is one function's escape summary: mask[i] is true when the
// i-th parameter may outlive the call.
type escapeInfo struct {
	mask  []bool
	edges []escEdge
}

// summarize exports per-function facts for the unit: arena contracts,
// arena-typed declarations, `aliases:` accessor markers, and parameter
// escape summaries.
func summarize(pass *analysis.Pass) {
	prog := pass.Program
	if prog == nil {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || (!hasDirective(d.Doc) && !hasDirective(ts.Doc)) {
						continue
					}
					if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil && obj.Pkg() != nil {
						prog.ExportFact(ns, "type:"+obj.Pkg().Path()+"."+obj.Name(), true)
					}
				}
			case *ast.FuncDecl:
				key := analysis.DeclKey(pass.TypesInfo, d)
				if key == "" {
					continue
				}
				if c := parseContract(d); c != nil {
					prog.ExportFact(ns, "fn:"+key, c)
				}
				if d.Doc != nil && strings.Contains(d.Doc.Text(), "aliases:") {
					prog.ExportFact(ns, "alias:"+key, true)
				}
				if d.Body != nil {
					prog.ExportFact(ns, "esc:"+key, escapeSummary(pass.TypesInfo, d))
				}
			}
		}
	}
}

// finish propagates escape summaries through the call graph: a parameter
// escapes if it is passed into an escaping parameter of any callee.
func finish(prog *analysis.Program) {
	for range prog.Funcs { // bounded by graph depth; one extra pass detects quiescence
		changed := false
		for key := range prog.Funcs {
			v, ok := prog.Fact(ns, "esc:"+key)
			if !ok {
				continue
			}
			ei := v.(*escapeInfo)
			for _, e := range ei.edges {
				if e.param >= len(ei.mask) || ei.mask[e.param] {
					continue
				}
				if cv, ok := prog.Fact(ns, "esc:"+e.callee); ok {
					if cei := cv.(*escapeInfo); e.arg < len(cei.mask) && cei.mask[e.arg] {
						ei.mask[e.param] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// hasDirective reports an //embrace:arena line in the raw comment list
// (directives are invisible to CommentGroup.Text).
func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := cutDirective(c.Text); ok {
			return true
		}
	}
	return false
}

func cutDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, Directive)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return rest, true
}

// parseContract reads the arena directives of a function's doc comment.
func parseContract(fd *ast.FuncDecl) *contract {
	if fd.Doc == nil {
		return nil
	}
	var c *contract
	for _, cm := range fd.Doc.List {
		rest, ok := cutDirective(cm.Text)
		if !ok {
			continue
		}
		if c == nil {
			c = &contract{}
		}
		args := strings.Fields(rest)
		switch {
		case len(args) == 0:
			c.source = true
		case args[0] == "reuse":
			if len(args) == 1 {
				c.reuse = append(c.reuse, -1)
			}
			for _, name := range args[1:] {
				if i, ok := paramIndex(fd, name); ok {
					c.reuse = append(c.reuse, i)
				}
			}
		default:
			for _, name := range args {
				if i, ok := paramIndex(fd, name); ok {
					c.out = append(c.out, i)
				}
			}
		}
	}
	return c
}

// paramIndex resolves a contract name to a flattened parameter index, or -1
// for the receiver.
func paramIndex(fd *ast.FuncDecl, name string) (int, bool) {
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, nm := range f.Names {
				if nm.Name == name {
					return -1, true
				}
			}
		}
	}
	idx := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range f.Names {
			if nm.Name == name {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// escapeSummary computes which parameters of fd may outlive the call: a
// parameter escapes when it is stored into a field, element, dereference,
// or package variable, sent on a channel, captured by a function literal,
// or handed to a goroutine. Plain returns and call-argument passing do not
// count (the latter is resolved transitively in finish), and wrapping in a
// composite literal is tracked by the caller's own taint, not the summary.
func escapeSummary(info *types.Info, fd *ast.FuncDecl) *escapeInfo {
	objs := make(map[types.Object]int)
	idx := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range f.Names {
			if o := info.Defs[nm]; o != nil {
				objs[o] = idx
			}
			idx++
		}
	}
	ei := &escapeInfo{mask: make([]bool, idx)}
	paramOf := func(e ast.Expr) (int, bool) {
		e = ast.Unparen(e)
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(sl.X)
		}
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return 0, false
		}
		i, ok := objs[info.Uses[id]]
		return i, ok
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				if pi, ok := paramOf(n.Rhs[i]); ok && heapLHS(info, n.Lhs[i]) {
					ei.mask[pi] = true
				}
			}
		case *ast.SendStmt:
			if pi, ok := paramOf(n.Value); ok {
				ei.mask[pi] = true
			}
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				if pi, ok := paramOf(a); ok {
					ei.mask[pi] = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if pi, ok := objs[info.Uses[id]]; ok {
						ei.mask[pi] = true
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if callee := analysis.CalleeFunc(info, n); callee != nil {
				for ai, a := range n.Args {
					if pi, ok := paramOf(a); ok {
						ei.edges = append(ei.edges, escEdge{param: pi, callee: analysis.FuncKeyOf(callee), arg: ai})
					}
				}
			}
		}
		return true
	})
	return ei
}

// heapLHS reports whether assigning to e publishes the value beyond the
// frame: a field, element, dereference, or package-level variable.
func heapLHS(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Program == nil {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// eventKind orders same-position events: a use at the position of a
// boundary call must not see the boundary's own kill.
type eventKind int

const (
	evUse eventKind = iota
	evBoundary
	evUntaint
	evTaint
)

type event struct {
	kind   eventKind
	pos    token.Pos
	key    string // variable key (use/taint/untaint) or source key (boundary)
	source string // taint: source key; boundary: call label
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	prog := pass.Program
	my := contractOf(prog, analysis.DeclKey(info, fd))

	// An unannotated function whose signature hands back an arena type is a
	// contract hole: its callers receive views with an invisible expiry.
	if (my == nil || !my.source) && fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			if tn := arenaTypeName(prog, info.TypeOf(r.Type)); tn != "" {
				pass.Reportf(r.Type.Pos(), "%s returns arena type %s without an //embrace:arena contract: annotate the function or return a copy", fd.Name.Name, tn)
			}
		}
	}

	var flow *analysis.Flow
	flow = analysis.NewFlow(info, func(e ast.Expr) (string, bool) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return "", false
		}
		callee := analysis.CalleeFunc(info, call)
		if callee == nil {
			return "", false
		}
		ck := analysis.FuncKeyOf(callee)
		if c := contractOf(prog, ck); c != nil && c.source {
			return sourceKeyForCall(pass, prog, call, callee), true
		}
		// An `aliases:` accessor shares its receiver's memory: the result
		// of recv.Row(k) on a tainted recv is a view of the same arena.
		if _, ok := prog.Fact(ns, "alias:"+ck); ok {
			if recv := recvExprOf(call, callee); recv != nil {
				return flow.SourceKey(recv)
			}
		}
		return "", false
	})
	// A scalar copied out of a view is the caller's own value; only types
	// that can alias the arena's memory stay tracked.
	flow.Narrow = func(lhs ast.Expr) bool { return aliasable(info.TypeOf(lhs)) }

	// Seed out-parameter views (ShardView's dst) before the fixpoint.
	var ccalls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(info, call)
		if callee == nil {
			return true
		}
		c := contractOf(prog, analysis.FuncKeyOf(callee))
		if c == nil {
			return true
		}
		ccalls = append(ccalls, call)
		for _, oi := range c.out {
			if oi < 0 || oi >= len(call.Args) {
				continue
			}
			if k, ok := flow.Key(stripAddr(call.Args[oi])); ok {
				if _, dup := flow.Tainted[k]; !dup {
					flow.Tainted[k] = sourceKeyForCall(pass, prog, call, callee)
				}
			}
		}
		return true
	})
	flow.Propagate(fd.Body)

	// Idents inside a contract call are handoffs, not uses: putBuf(buf) is
	// buf's last use, ShardView(p, &dst) re-taints dst.
	inContract := func(p token.Pos) bool {
		for _, c := range ccalls {
			if c.Pos() <= p && p < c.End() {
				return true
			}
		}
		return false
	}

	var events []event
	reportedEscape := map[token.Pos]bool{}
	lhsPos := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) == 1 {
				// v, ok := x.(T): fold to the value edge.
				n = &ast.AssignStmt{Lhs: n.Lhs[:1], Rhs: n.Rhs, TokPos: n.TokPos}
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				key, keyed := flow.Key(n.Lhs[i])
				if keyed {
					// A rebind is not a read; writes through an index or
					// dereference stay use events (they touch the memory).
					lhsPos[ast.Unparen(n.Lhs[i]).Pos()] = true
				}
				src, tainted := flow.SourceKey(n.Rhs[i])
				tainted = tainted && aliasable(info.TypeOf(n.Rhs[i]))
				if tainted && heapLHS(info, n.Lhs[i]) && !reportedEscape[n.Pos()] {
					reportedEscape[n.Pos()] = true
					pass.Reportf(n.Pos(), "arena-backed value (from %s) stored in %s, which outlives the reuse boundary: copy it first or justify with //embrace:allow arenalife",
						display(src), types.ExprString(n.Lhs[i]))
				}
				if !keyed {
					continue
				}
				if tainted {
					events = append(events, event{kind: evTaint, pos: n.Pos(), key: key, source: src})
				} else if _, was := flow.Tainted[key]; was {
					events = append(events, event{kind: evUntaint, pos: n.Pos(), key: key})
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, nm := range n.Names {
				lhsPos[nm.Pos()] = true
				if src, ok := flow.SourceKey(n.Values[i]); ok {
					events = append(events, event{kind: evTaint, pos: nm.Pos(), key: nm.Name, source: src})
				}
			}
		case *ast.ReturnStmt:
			if my != nil && my.source {
				return true
			}
			for _, res := range n.Results {
				if src, ok := flow.SourceKey(res); ok && aliasable(info.TypeOf(res)) {
					pass.Reportf(n.Pos(), "%s returns arena-backed value (from %s) but is not annotated //embrace:arena: callers cannot see its expiry",
						fd.Name.Name, display(src))
				}
			}
		case *ast.SendStmt:
			if src, ok := flow.SourceKey(n.Value); ok && aliasable(info.TypeOf(n.Value)) {
				pass.Reportf(n.Pos(), "arena-backed value (from %s) sent on a channel, which outlives the reuse boundary: copy it first", display(src))
			}
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				if src, ok := flow.SourceKey(a); ok && aliasable(info.TypeOf(a)) {
					pass.Reportf(a.Pos(), "arena-backed value (from %s) handed to a goroutine, which may outlive the reuse boundary: copy it first", display(src))
				}
			}
		case *ast.FuncLit:
			reportCaptures(pass, flow, n)
			return false
		case *ast.CallExpr:
			callee := analysis.CalleeFunc(info, n)
			if callee == nil {
				return true
			}
			ck := analysis.FuncKeyOf(callee)
			if c := contractOf(prog, ck); c != nil {
				// An out-param call re-derives the view: record the taint so
				// the replay sees a fresh binding after any boundary.
				for _, oi := range c.out {
					if oi < 0 || oi >= len(n.Args) {
						continue
					}
					if k, ok := flow.Key(stripAddr(n.Args[oi])); ok {
						events = append(events, event{kind: evTaint, pos: n.Pos(), key: k,
							source: sourceKeyForCall(pass, prog, n, callee)})
					}
				}
				for _, ri := range c.reuse {
					var arg ast.Expr
					if ri == -1 {
						arg = recvExprOf(n, callee)
					} else if ri < len(n.Args) {
						arg = n.Args[ri]
					}
					if arg == nil {
						continue
					}
					kill, ok := flow.SourceKey(arg)
					if !ok {
						kill = types.ExprString(stripAddr(arg))
					}
					events = append(events, event{kind: evBoundary, pos: n.Pos(), key: kill, source: types.ExprString(n.Fun)})
				}
			}
			if ev, ok := prog.Fact(ns, "esc:"+ck); ok {
				mask := ev.(*escapeInfo).mask
				// Reuse parameters escape into the pool by design; the
				// boundary event above already models that recycling.
				reused := map[int]bool{}
				if c := contractOf(prog, ck); c != nil {
					for _, ri := range c.reuse {
						reused[ri] = true
					}
				}
				for ai, a := range n.Args {
					if ai >= len(mask) || !mask[ai] || reused[ai] {
						continue
					}
					if src, ok := flow.SourceKey(a); ok && aliasable(info.TypeOf(a)) {
						pass.Reportf(a.Pos(), "arena-backed value (from %s) passed to %s, whose parameter escapes: copy it first", display(src), callee.Name())
					}
				}
			}
		case *ast.Ident:
			if lhsPos[n.Pos()] || inContract(n.Pos()) {
				return true
			}
			if _, ok := flow.Tainted[n.Name]; !ok {
				return true
			}
			if v, ok := info.Uses[n].(*types.Var); ok && !v.IsField() {
				events = append(events, event{kind: evUse, pos: n.Pos(), key: n.Name})
			}
		case *ast.SelectorExpr:
			if key := types.ExprString(n); !lhsPos[n.Pos()] && !inContract(n.Pos()) {
				if _, ok := flow.Tainted[key]; ok {
					events = append(events, event{kind: evUse, pos: n.Pos(), key: key})
				}
			}
		}
		return true
	})

	replay(pass, events)
}

// replay walks the function's events in source order and reports uses of a
// view after a boundary recycled its arena. A re-derived view (taint after
// the boundary) is fresh and legal; loop back-edges are not modeled.
func replay(pass *analysis.Pass, events []event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		return events[i].kind < events[j].kind
	})
	type binding struct {
		source string
		pos    token.Pos
	}
	type kill struct {
		pos   token.Pos
		label string
	}
	bindings := map[string]binding{}
	killed := map[string]kill{}
	reported := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case evTaint:
			bindings[ev.key] = binding{source: ev.source, pos: ev.pos}
		case evUntaint:
			delete(bindings, ev.key)
		case evBoundary:
			killed[ev.key] = kill{pos: ev.pos, label: ev.source}
		case evUse:
			b, ok := bindings[ev.key]
			if !ok || reported[ev.key] {
				continue
			}
			if k, ok := killed[b.source]; ok && k.pos > b.pos {
				reported[ev.key] = true
				pass.Reportf(ev.pos, "%s is a view of %s, recycled by %s at line %d: reading it now sees reused memory",
					ev.key, display(b.source), k.label, pass.Fset.Position(k.pos).Line)
			}
		}
	}
}

// reportCaptures flags tainted variables referenced inside a function
// literal, which may run after the enclosing frame's boundaries.
func reportCaptures(pass *analysis.Pass, flow *analysis.Flow, fl *ast.FuncLit) {
	seen := map[string]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		src, tainted := flow.Tainted[id.Name]
		if !tainted || seen[id.Name] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pos() == token.NoPos || (fl.Pos() <= obj.Pos() && obj.Pos() < fl.End()) {
			return true // declared inside the literal: a different variable
		}
		seen[id.Name] = true
		pass.Reportf(id.Pos(), "arena-backed %s (from %s) captured by closure: it may outlive the reuse boundary — copy it first", id.Name, display(src))
		return true
	})
}

// contractOf fetches a function's parsed contract, if any.
func contractOf(prog *analysis.Program, key string) *contract {
	if key == "" {
		return nil
	}
	if v, ok := prog.Fact(ns, "fn:"+key); ok {
		return v.(*contract)
	}
	return nil
}

// sourceKeyForCall names the arena a contract call lends views of: the
// receiver expression when the receiver is an arena type (views of h.arena
// die when h.arena is exchanged into), otherwise the allocation site
// (each getBuf call lends a distinct buffer).
func sourceKeyForCall(pass *analysis.Pass, prog *analysis.Program, call *ast.CallExpr, callee *types.Func) string {
	if recv := recvExprOf(call, callee); recv != nil {
		if arenaTypeName(prog, pass.TypesInfo.TypeOf(recv)) != "" {
			return types.ExprString(recv)
		}
	}
	return types.ExprString(call.Fun) + "@" + strconv.Itoa(pass.Fset.Position(call.Pos()).Line)
}

// recvExprOf returns the receiver expression of a method call, or nil.
func recvExprOf(call *ast.CallExpr, callee *types.Func) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// arenaTypeName returns the canonical name of t's arena type, or "" when t
// is not (a pointer to) a type carrying the //embrace:arena mark.
func arenaTypeName(prog *analysis.Program, t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if _, ok := prog.Fact(ns, "type:"+key); ok {
		return key
	}
	return ""
}

// stripAddr unwraps &x and parentheses.
func stripAddr(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return ast.Unparen(u.X)
	}
	return e
}

// aliasable reports whether a value of type t can share memory with its
// source: copying a basic value (or an array/struct of only basic values)
// severs the alias; slices, pointers, maps, interfaces, and anything
// containing them keep it.
func aliasable(t types.Type) bool {
	if t == nil {
		return true // unresolved: stay conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return aliasable(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasable(u.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}

// display trims the line qualifier off an allocation-site source key for
// messages.
func display(src string) string {
	if i := strings.IndexByte(src, '@'); i >= 0 {
		return src[:i] + " (line " + src[i+1:] + ")"
	}
	return src
}
