// Package a exercises arenalife: true positives for every leak class and
// the safe patterns that must stay silent.
package a

import (
	"embrace/internal/collective"
	"embrace/internal/tensor"
)

func sink(xs ...interface{}) {}

var global []float32

// --- pooled wire buffers -------------------------------------------------

// useAfterPut reads a pooled buffer after returning it (the seeded-fault
// shape: use-after-reuse of a pooled buffer).
func useAfterPut(c *collective.Communicator) {
	buf := c.GetBuf(8)
	sink(buf)
	c.PutBuf(buf)
	sink(buf) // want `recycled by c\.PutBuf`
}

// putThenConsume is the blessed shape: every read precedes the boundary.
func putThenConsume(c *collective.Communicator) {
	buf := c.GetBuf(8)
	sink(buf)
	c.PutBuf(buf)
}

// independentBufs returns one buffer while another stays live: the
// allocation-site keys must not be conflated.
func independentBufs(c *collective.Communicator) {
	x := c.GetBuf(4)
	y := c.GetBuf(4)
	c.PutBuf(x)
	sink(y)
	c.PutBuf(y)
}

// scalarCopyIsFine copies a value out of the buffer before the boundary;
// the copy owes nothing to the pool.
func scalarCopyIsFine(c *collective.Communicator) float32 {
	buf := c.GetBuf(4)
	v := buf[0]
	c.PutBuf(buf)
	return v
}

// --- exchange arena views ------------------------------------------------

// viewAcrossExchange holds a ShardView across the next exchange into the
// same arena.
func viewAcrossExchange(c *collective.Communicator, arena *collective.SparseShards, send []*tensor.Sparse) {
	var v tensor.Sparse
	arena.ShardView(0, &v)
	sink(v.Vals)
	_ = c.AlltoAllSparse("grad", 1, send, arena)
	sink(v.Vals) // want `recycled by c\.AlltoAllSparse`
}

// refreshView re-derives the view after the exchange: fresh and legal.
func refreshView(c *collective.Communicator, arena *collective.SparseShards, send []*tensor.Sparse) {
	var v tensor.Sparse
	arena.ShardView(0, &v)
	sink(v.Vals)
	_ = c.AlltoAllSparse("grad", 1, send, arena)
	arena.ShardView(0, &v)
	sink(v.Vals)
}

type holder struct {
	rows *tensor.Sparse
}

// stash parks a merged view in a struct field, where it outlives the arena.
func stash(h *holder, arena *collective.SparseShards) {
	h.rows = arena.Merged() // want `stored in h\.rows`
}

// leakMerged hands a view to its caller without declaring the expiry.
func leakMerged(arena *collective.SparseShards) *tensor.Sparse {
	return arena.Merged() // want `not annotated //embrace:arena`
}

// mergedView declares the contract, so passing the view on is legal.
//
//embrace:arena
func mergedView(arena *collective.SparseShards) *tensor.Sparse {
	return arena.Merged()
}

type wrap struct {
	arena collective.SparseShards
}

// Arena returns the arena type itself without a contract: callers receive
// views with an invisible expiry.
func (w *wrap) Arena() *collective.SparseShards { // want `returns arena type`
	return &w.arena
}

// rowLeak publishes an aliases:-documented row of a merged view.
func rowLeak(arena *collective.SparseShards) {
	m := arena.Merged()
	global = m.Row(0) // want `stored in global`
}

// rowCopy copies the row out first — append from a fresh slice severs the
// alias.
func rowCopy(arena *collective.SparseShards) {
	m := arena.Merged()
	global = append([]float32(nil), m.Row(0)...)
}

// --- closures, goroutines, callees ---------------------------------------

// capture closes over a pooled buffer that is recycled before the closure
// can run.
func capture(c *collective.Communicator) func() float32 {
	buf := c.GetBuf(4)
	f := func() float32 { return buf[0] } // want `captured by closure`
	c.PutBuf(buf)
	return f
}

// spawn hands a pooled buffer to a goroutine racing the recycle.
func spawn(c *collective.Communicator) {
	buf := c.GetBuf(4)
	go process(buf) // want `handed to a goroutine`
	c.PutBuf(buf)
}

func process(xs []float32) {}

// throughCallee leaks via a same-package callee whose parameter escapes.
func throughCallee(c *collective.Communicator) {
	buf := c.GetBuf(4)
	stashGlobal(buf) // want `whose parameter escapes`
	c.PutBuf(buf)
}

func stashGlobal(b []float32) { global = b }

// throughTwo leaks through two levels of calls (transitive summaries).
func throughTwo(c *collective.Communicator) {
	buf := c.GetBuf(4)
	stashIndirect(buf) // want `whose parameter escapes`
	c.PutBuf(buf)
}

func stashIndirect(b []float32) { stashGlobal(b) }

// crossPackage leaks into another package's global — the summary travels as
// a fact, not syntax.
func crossPackage(c *collective.Communicator) {
	buf := c.GetBuf(4)
	collective.Retain(buf) // want `whose parameter escapes`
	c.PutBuf(buf)
}

// handOff passes the buffer to a callee that only reads it: no finding.
func handOff(c *collective.Communicator) {
	buf := c.GetBuf(4)
	process(buf)
	c.PutBuf(buf)
}

// --- bucketer scratch ----------------------------------------------------

// rebucket reads offsets computed before the bucketer was recycled.
func rebucket(b *tensor.RowBucketer, idx []int64) int32 {
	b.Bucket(idx, 4)
	offs := b.Offsets()
	b.Bucket(idx, 8)
	return offs[0] // want `recycled by b\.Bucket`
}

// bucketOnce consumes the scratch before the next ingest: silent.
func bucketOnce(b *tensor.RowBucketer, idx []int64) int32 {
	b.Bucket(idx, 4)
	offs, perm := b.Offsets(), b.Perm()
	sink(offs, perm)
	return offs[0]
}
