// Package tensor is a stub of the real tensor package carrying the arena
// contracts the analyzer consumes.
package tensor

// Sparse is a COO index–value batch.
type Sparse struct {
	Indices []int64
	Vals    []float32
	Dim     int
}

// Row returns row k of the value matrix.
//
// aliases: the returned slice is the tensor's own backing array; callers
// must not retain it across mutations.
func (s *Sparse) Row(k int) []float32 {
	return s.Vals[k*s.Dim : (k+1)*s.Dim]
}

// RowBucketer reorders rows into per-destination buckets using reusable
// scratch.
//
//embrace:arena
type RowBucketer struct {
	counts []int32
	offs   []int32
	perm   []int32
}

// Bucket ingests a batch, recycling the bucketer's scratch: views handed
// out by Counts/Offsets/Perm die here.
//
//embrace:arena reuse b
func (b *RowBucketer) Bucket(idx []int64, nb int) {
	b.counts = b.counts[:0]
	b.offs = b.offs[:0]
	b.perm = b.perm[:0]
}

// Counts returns the per-bucket row counts.
//
//embrace:arena
func (b *RowBucketer) Counts() []int32 { return b.counts }

// Offsets returns the per-bucket start offsets.
//
//embrace:arena
func (b *RowBucketer) Offsets() []int32 { return b.offs }

// Perm returns the permutation of rows into bucket order.
//
//embrace:arena
func (b *RowBucketer) Perm() []int32 { return b.perm }
