// Package collective is a stub of the real collective package carrying the
// arena contracts the analyzer consumes.
package collective

import "embrace/internal/tensor"

// Communicator is the stub transport handle.
type Communicator struct {
	rank, size int
}

// GetBuf lends a pooled wire buffer; ownership returns via PutBuf.
//
//embrace:arena
func (c *Communicator) GetBuf(n int) []float32 {
	return make([]float32, n)
}

// PutBuf recycles a buffer lent by GetBuf; outstanding views of it die.
//
//embrace:arena reuse buf
func (c *Communicator) PutBuf(buf []float32) {}

// SparseShards is the receive arena of a sparse exchange.
//
//embrace:arena
type SparseShards struct {
	merged tensor.Sparse
	ends   []int
}

// Merged returns a view of the concatenated shards, valid until the next
// exchange into the arena.
//
//embrace:arena
func (a *SparseShards) Merged() *tensor.Sparse {
	return &a.merged
}

// ShardView points dst at shard p's rows, zero-copy; dst is valid until the
// next exchange into the arena.
//
//embrace:arena dst
func (a *SparseShards) ShardView(p int, dst *tensor.Sparse) {
	*dst = a.merged
}

// AlltoAllSparse exchanges shards into arena, recycling its storage.
//
//embrace:arena reuse arena
func (c *Communicator) AlltoAllSparse(op string, step int, send []*tensor.Sparse, arena *SparseShards) error {
	arena.ends = arena.ends[:0]
	return nil
}

var retained []float32

// Retain keeps buf beyond the call — an escaping parameter the analyzer
// must discover from this package's summary, not from the caller's syntax.
func Retain(buf []float32) {
	retained = buf
}
