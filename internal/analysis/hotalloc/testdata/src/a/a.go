// Package a exercises the hotalloc analyzer: allocations inside
// //embrace:hotpath functions are findings, cold functions and justified
// exceptions are not.
package a

// frame is reusable scratch with the blessed growth idiom.
type frame struct {
	idx  []int64
	vals []float32
}

// grow reslices and self-appends — the steady-state zero-alloc pattern.
//
//embrace:hotpath
func (f *frame) grow(ids []int64, vals []float32) {
	f.idx = f.idx[:0]
	f.idx = append(f.idx, ids...)
	f.vals = append(f.vals[:0], vals...)
}

// cold is unannotated: it may allocate freely.
func cold(n int) []int64 {
	out := make([]int64, n)
	out = append(out[:1], 2)
	go func() {}()
	return out
}

//embrace:hotpath
func hot(n int) {
	buf := make([]float32, n) // want `allocates with make`
	_ = buf
	p := new(frame) // want `allocates with new`
	_ = p
	m := map[int64]int{} // want `map literal`
	_ = m
	s := []int{1, 2} // want `slice literal`
	_ = s
	fn := func() {} // want `builds a closure`
	fn()
	go fn() // want `spawns a goroutine`
}

//embrace:hotpath
func divert(dst, src []int64) []int64 {
	dst = append(src, 1) // want `grows fresh storage with append`
	return append(dst, 2) // want `grows fresh storage with append`
}

//embrace:hotpath
func justified(f *frame, n int) {
	done := make(chan struct{}, 1) //embrace:allow hotalloc the per-step join channel is part of the step protocol
	_ = done
	if cap(f.idx) < n {
		f.idx = make([]int64, 0, n) //embrace:allow hotalloc amortized high-water growth
	}
}
