// Package hotalloc polices the zero-steady-state-allocation discipline of
// functions marked `//embrace:hotpath`.
//
// The hot-path rebuild moved every per-step allocation of the training loop
// into reusable scratch (arena exchanges, coalesce buffers, row bucketers),
// and the steady-state alloc-budget tests pin the result. But a budget test
// only counts — it cannot point at the line that regressed. This analyzer
// does: inside any function whose doc comment carries the
// `//embrace:hotpath` directive it flags the expressions that allocate on
// every call:
//
//   - make and new calls
//   - slice and map composite literals
//   - function literals (closure capture allocates)
//   - go statements (a goroutine plus its closure)
//   - append whose result lands somewhere other than its own first argument
//     (x = append(y, ...) grows fresh storage; x = append(x, ...) reuses)
//
// Deliberate allocations — amortized high-water growth, per-step protocol
// objects like a join channel — are justified in place:
//
//	//embrace:allow hotalloc <why this allocation is acceptable>
//
// Cold functions are never inspected, so the annotation is also the
// contract: marking a function hotpath opts its body into the discipline.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"embrace/internal/analysis"
)

// Directive marks a function as hot-path in its doc comment.
const Directive = "//embrace:hotpath"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid steady-state allocations (make/new/literals/closures/goroutines/growing append) in //embrace:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd.Doc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isHotPath reports whether the doc comment group carries the directive.
// Directive comments are invisible to CommentGroup.Text, so the raw list is
// scanned.
func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// checkFunc walks one hot-path body. Function literals and go statements are
// flagged as allocations themselves and not descended into: the code inside
// them runs off the caller's critical path (or is covered by its own
// justification), and one finding per construct keeps the signal readable.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	sanctioned := selfAppends(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s builds a closure: hoist it or justify with //embrace:allow hotalloc", name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path %s spawns a goroutine: reuse a worker or justify with //embrace:allow hotalloc", name)
			return false
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path %s allocates a slice literal: reuse scratch or justify with //embrace:allow hotalloc", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path %s allocates a map literal: reuse scratch or justify with //embrace:allow hotalloc", name)
			}
		case *ast.CallExpr:
			switch builtinName(pass.TypesInfo, n) {
			case "make", "new":
				pass.Reportf(n.Pos(), "hot path %s allocates with %s: hoist into reusable scratch or justify with //embrace:allow hotalloc",
					name, builtinName(pass.TypesInfo, n))
			case "append":
				if !sanctioned[n] {
					pass.Reportf(n.Pos(), "hot path %s grows fresh storage with append: assign back to the appended slice (x = append(x, ...)) or justify with //embrace:allow hotalloc", name)
				}
			}
		}
		return true
	})
}

// selfAppends collects the append calls of the x = append(x, ...) and
// x = append(x[:0], ...) shapes — result assigned back over the (possibly
// resliced) first argument, which reuses capacity and is the blessed growth
// idiom. Structural equality of the two expressions is judged by their
// printed form; anything trickier (aliased names, swapped fields) is flagged
// and must carry a justification.
func selfAppends(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || builtinName(pass.TypesInfo, call) != "append" || len(call.Args) == 0 {
				continue
			}
			target := ast.Unparen(call.Args[0])
			if sl, ok := target.(*ast.SliceExpr); ok {
				target = ast.Unparen(sl.X)
			}
			if types.ExprString(ast.Unparen(as.Lhs[i])) == types.ExprString(target) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
