package hotalloc_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a")
}
