package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The loader typechecks each unit's dependencies with function bodies
// ignored, so the *types.Func for a cross-package callee is a different
// object in the calling unit than in the unit that defines it. The program
// layer therefore never keys anything by object identity: functions are
// named by their canonical string key (types.Func.FullName, e.g.
// "(*embrace/internal/collective.Communicator).AlltoAllSparse"), which is
// stable across units, and facts travel between analyzers' phases under
// those keys.

// FuncKeyOf returns the canonical program-wide key of a function.
func FuncKeyOf(fn *types.Func) string {
	return fn.FullName()
}

// DeclKey returns the canonical key of a function declaration, or "" when
// the declaration did not typecheck.
func DeclKey(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return FuncKeyOf(fn)
	}
	return ""
}

// FuncNode is one declared function of the program: its syntax, the unit it
// lives in, and the canonical keys of every function it calls (calls inside
// nested function literals are attributed to the enclosing declaration).
type FuncNode struct {
	Key     string
	Decl    *ast.FuncDecl
	Unit    *Package
	Callees []string
}

// Program is the cross-package layer the Runner builds over all loaded
// units: a call graph plus a string-keyed fact store that analyzers fill in
// during Summarize and consume during Finish and Run.
type Program struct {
	Fset  *token.FileSet
	Units []*Package
	// Funcs maps canonical function key to its node, for every function
	// declared with a body in some unit. Bodiless dependency packages
	// contribute call-graph leaves only.
	Funcs map[string]*FuncNode

	facts map[string]any
}

// NewProgram indexes the declared functions of units and resolves each
// call site to its callee's canonical key.
func NewProgram(fset *token.FileSet, units []*Package) *Program {
	prog := &Program{
		Fset:  fset,
		Units: units,
		Funcs: make(map[string]*FuncNode),
		facts: make(map[string]any),
	}
	for _, unit := range units {
		for _, file := range unit.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := DeclKey(unit.Info, fd)
				if key == "" {
					continue
				}
				node := &FuncNode{Key: key, Decl: fd, Unit: unit}
				seen := map[string]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeFunc(unit.Info, call); callee != nil {
						if k := FuncKeyOf(callee); !seen[k] {
							seen[k] = true
							node.Callees = append(node.Callees, k)
						}
					}
					return true
				})
				sort.Strings(node.Callees)
				prog.Funcs[key] = node
			}
		}
	}
	return prog
}

// ExportFact stores v for key in the analyzer-owned namespace ns. Facts are
// write-once per (ns, key): the first export wins, which keeps the in-pkg
// test unit (a superset of the plain unit's files) from clobbering facts
// with equivalent re-derivations.
func (p *Program) ExportFact(ns, key string, v any) {
	k := ns + "\x00" + key
	if _, ok := p.facts[k]; !ok {
		p.facts[k] = v
	}
}

// Fact retrieves the fact stored for key in namespace ns.
func (p *Program) Fact(ns, key string) (any, bool) {
	v, ok := p.facts[ns+"\x00"+key]
	return v, ok
}
