// Package locksend flags blocking communication performed while a mutex
// acquired in the same function is still held.
//
// The hazard is a distributed deadlock: a collective only completes when
// every rank participates, so a rank that blocks inside Send/Recv/AllReduce
// while holding a lock can stall a peer that needs that lock to reach its
// own side of the collective. Parallax and SparCML both single out this
// class (with tag reuse) as the hardest sparse-communication bugs to
// reproduce — the stall only manifests under unlucky scheduling.
//
// The analysis is intra-procedural and flow-approximate: within each
// function body (function literals are separate scopes, `go` statements are
// excluded), Lock/RLock and Unlock/RUnlock events on sync.Mutex/RWMutex
// receivers are replayed in source order against the blocking calls between
// them; a deferred unlock holds its lock to the end of the function. Calls
// considered blocking: comm.Transport Send/Recv (on the interface or any
// implementation), Communicator collectives, and the package-level *Via
// collectives of internal/collective.
package locksend

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"embrace/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "locksend",
	Doc:  "forbid blocking Transport/collective calls while holding a sync.Mutex or RWMutex acquired in the same function",
	Run:  run,
}

// communicatorMethods are the blocking entry points of
// collective.Communicator. Tag/Ticket/Rank/Size are pure bookkeeping.
var communicatorMethods = map[string]bool{
	"Send": true, "Recv": true,
	"AllReduce": true, "AllReduceWith": true, "ReduceScatter": true,
	"Broadcast": true, "Barrier": true,
	"SparseAllGather": true, "SparseAllToAll": true,
	"HierarchicalAllReduce": true,
}

// collectiveFuncs are the blocking package-level collectives (current and
// legacy spellings).
var collectiveFuncs = map[string]bool{
	"AllGatherVia": true, "AllToAllVia": true, "GatherVia": true,
	"Barrier": true, "Broadcast": true, "ReduceScatter": true,
	"RingAllReduce": true, "RingAllReduceOp": true,
	"AllGather": true, "AllToAll": true, "Gather": true,
	"SparseAllGather": true, "SparseAllToAll": true,
	"HierarchicalAllReduce": true,
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evBlocking
)

type event struct {
	pos  int // source order within the function
	node ast.Node
	kind int
	key  string // lock identity, e.g. "s.mu"; blocking call name otherwise
}

func run(pass *analysis.Pass) (any, error) {
	transport := findTransport(pass.Pkg)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScopes(pass, fd.Body, transport)
		}
	}
	return nil, nil
}

// checkScopes analyzes body as one scope, then recurses into every function
// literal found inside it as its own scope.
func checkScopes(pass *analysis.Pass, body *ast.BlockStmt, transport *types.Interface) {
	var lits []*ast.FuncLit
	events := collect(pass, body, &lits, transport)
	replay(pass, events)
	for _, lit := range lits {
		checkScopes(pass, lit.Body, transport)
	}
}

// collect gathers lock and blocking-call events of one scope in source
// order. Function literals are recorded for separate analysis; the body of a
// `go` statement's call runs on another goroutine and contributes nothing to
// this scope.
func collect(pass *analysis.Pass, body *ast.BlockStmt, lits *[]*ast.FuncLit, transport *types.Interface) []event {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			*lits = append(*lits, n)
			return false
		case *ast.GoStmt:
			// Arguments are evaluated here, but the call itself is not a
			// block of this goroutine. A FuncLit argument still gets its
			// own scope via the literal walk below.
			ast.Inspect(n.Call, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok {
					*lits = append(*lits, lit)
					return false
				}
				return true
			})
			return false
		case *ast.DeferStmt:
			if key, kind, ok := classifyLockOp(pass, n.Call); ok && kind == evUnlock {
				events = append(events, event{pos: int(n.Pos()), node: n, kind: evDeferUnlock, key: key})
			}
			// Other deferred work (including deferred blocking calls) runs
			// after the function's own unlocks; skip.
			return false
		case *ast.CallExpr:
			if key, kind, ok := classifyLockOp(pass, n); ok {
				events = append(events, event{pos: int(n.Pos()), node: n, kind: kind, key: key})
				return true
			}
			if name, ok := classifyBlocking(pass, n, transport); ok {
				events = append(events, event{pos: int(n.Pos()), node: n, kind: evBlocking, key: name})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// replay simulates the event sequence and reports blocking calls made while
// any lock is held.
func replay(pass *analysis.Pass, events []event) {
	held := map[string]bool{}   // lock key -> currently held
	sticky := map[string]bool{} // lock key -> unlock is deferred (held to end)
	var order []string
	for _, e := range events {
		switch e.kind {
		case evLock:
			if !held[e.key] {
				order = append(order, e.key)
			}
			held[e.key] = true
		case evUnlock:
			if !sticky[e.key] {
				held[e.key] = false
			}
		case evDeferUnlock:
			sticky[e.key] = true
		case evBlocking:
			for _, key := range order {
				if held[key] {
					pass.Reportf(e.node.Pos(),
						"blocking %s while %q is locked: a stalled peer holding up this collective deadlocks against the lock; release %q first",
						e.key, key, key)
					break
				}
			}
		}
	}
}

// classifyLockOp recognizes Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/RWMutex values and returns the lock's identity.
func classifyLockOp(pass *analysis.Pass, call *ast.CallExpr) (key string, kind int, ok bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := analysis.ReceiverType(fn)
	if recv == nil {
		return "", 0, false
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return "", 0, false
	}
	sel, ok2 := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok2 {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// classifyBlocking recognizes the communication calls that can stall a rank.
func classifyBlocking(pass *analysis.Pass, call *ast.CallExpr, transport *types.Interface) (string, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	recv := analysis.ReceiverType(fn)
	if recv == nil {
		if strings.HasSuffix(analysis.PkgPathOf(fn), "internal/collective") && collectiveFuncs[fn.Name()] {
			return "collective." + fn.Name(), true
		}
		return "", false
	}
	pkg := recv.Obj().Pkg()
	if pkg == nil {
		return "", false
	}
	if strings.HasSuffix(pkg.Path(), "internal/collective") && recv.Obj().Name() == "Communicator" && communicatorMethods[fn.Name()] {
		return "Communicator." + fn.Name(), true
	}
	// Send/Recv on the Transport interface or anything implementing it
	// (metrics.Transport, comm.TCPNode, test doubles).
	if fn.Name() == "Send" || fn.Name() == "Recv" {
		if strings.HasSuffix(pkg.Path(), "internal/comm") && recv.Obj().Name() == "Transport" {
			return "Transport." + fn.Name(), true
		}
		if transport != nil && (types.Implements(recv, transport) || types.Implements(types.NewPointer(recv), transport)) {
			return recv.Obj().Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

// findTransport locates the comm.Transport interface through the unit's
// import graph, so implementations can be recognized by behavior rather than
// by name. Returns nil when the unit never touches comm.
func findTransport(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Interface
	walk = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if strings.HasSuffix(p.Path(), "internal/comm") {
			if obj, ok := p.Scope().Lookup("Transport").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
		for _, imp := range p.Imports() {
			if iface := walk(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return walk(pkg)
}
