package locksend_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/locksend"
)

func TestLockSend(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), locksend.Analyzer, "a")
}
