// Package comm is a fixture stub mirroring the Transport surface the
// analyzer matches against.
package comm

// Transport moves byte payloads between ranks.
type Transport interface {
	Rank() int
	Size() int
	Send(to, tag int, payload []byte)
	Recv(from, tag int) []byte
}
