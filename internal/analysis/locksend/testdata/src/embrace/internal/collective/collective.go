// Package collective is a fixture stub mirroring the blocking surface the
// analyzer matches against.
package collective

import "embrace/internal/comm"

// Communicator is the stateful collectives handle.
type Communicator struct{ t comm.Transport }

// NewCommunicator wraps a transport.
func NewCommunicator(t comm.Transport) *Communicator { return &Communicator{t: t} }

// Tag is pure bookkeeping, never blocking.
func (c *Communicator) Tag(op string, step int) int { return 0 }

// AllReduce blocks until every rank participates.
func (c *Communicator) AllReduce(op string, step int, buf []float64) {}

// Barrier blocks until every rank participates.
func (c *Communicator) Barrier(op string, step int) {}

// Send blocks on transport delivery.
func (c *Communicator) Send(op string, step, to int, payload []byte) {}

// AllGatherVia is a blocking package-level collective.
func AllGatherVia[T any](c *Communicator, op string, step int, v T) []T { return []T{v} }
