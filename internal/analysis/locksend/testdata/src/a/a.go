// Package a exercises the locksend analyzer: blocking communication under a
// held mutex is flagged; the release-then-communicate pattern is not.
package a

import (
	"sync"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

type server struct {
	mu    sync.Mutex
	state sync.RWMutex
	buf   []float64
	t     comm.Transport
	c     *collective.Communicator
}

func (s *server) deferHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.AllReduce("grads", 0, s.buf) // want `blocking Communicator\.AllReduce while "s\.mu" is locked`
}

func (s *server) explicitHeld() {
	s.mu.Lock()
	s.t.Send(1, 7, nil) // want `blocking Transport\.Send while "s\.mu" is locked`
	s.mu.Unlock()
}

func (s *server) readLockHeld() {
	s.state.RLock()
	_ = collective.AllGatherVia(s.c, "meta", 0, len(s.buf)) // want `blocking collective\.AllGatherVia while "s\.state" is locked`
	s.state.RUnlock()
}

// releaseFirst is the approved pattern: copy what you need under the lock,
// release, then communicate.
func (s *server) releaseFirst() {
	s.mu.Lock()
	local := append([]float64(nil), s.buf...)
	s.mu.Unlock()
	s.c.AllReduce("grads", 0, local)
}

// relockAfter shows the lock being retaken after the collective; only calls
// made while held are flagged.
func (s *server) relockAfter() {
	s.mu.Lock()
	n := len(s.buf)
	s.mu.Unlock()
	s.c.Barrier("epoch", n)
	s.mu.Lock()
	s.buf = s.buf[:0]
	s.mu.Unlock()
}

// goroutineScope: the literal passed to go runs on another goroutine with its
// own (empty) lock scope, so its collective is not under this function's lock.
func (s *server) goroutineScope() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.c.Barrier("background", 0)
	}()
}

// litOwnLock: a function literal is its own scope and is flagged on its own
// lock, not the enclosing function's.
func (s *server) litOwnLock() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.t.Recv(0, 3) // want `blocking Transport\.Recv while "s\.mu" is locked`
	}
}

// tagOnly: Communicator bookkeeping does not block and is fine under a lock.
func (s *server) tagOnly() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Tag("grads", 4)
}

// justified keeps the suppression mechanism honest for this analyzer too.
func (s *server) justified() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//embrace:allow locksend fixture documents a single-rank shutdown path that cannot deadlock
	s.c.Barrier("shutdown", 0)
}
