package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"embrace/internal/analysis"
)

// toyAnalyzer flags every call to a function named boom, a minimal analyzer
// for exercising the directive and suppression machinery.
func toyAnalyzer(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "flags calls to boom",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "boom call")
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

// checkSrc loads src as a one-file package from a temp dir (under subdir if
// non-empty) and runs the analyzers over it.
func checkSrc(t *testing.T, subdir, src string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	dir := t.TempDir()
	pkgDir := dir
	importPath := "tmpcheck"
	if subdir != "" {
		pkgDir = filepath.Join(dir, subdir)
		importPath = "tmpcheck/" + subdir
		if err := os.MkdirAll(pkgDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader([]analysis.Root{{Prefix: "tmpcheck", Dir: dir}})
	units, err := loader.LoadDir(pkgDir, importPath, false)
	if err != nil {
		t.Fatal(err)
	}
	runner := analysis.NewRunner(analyzers, loader.Fset, units)
	var diags []analysis.Diagnostic
	for _, unit := range units {
		ds, err := runner.Check(unit)
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}
	return diags
}

func messages(diags []analysis.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		s := d.Message
		if d.Suppressed {
			s = "[suppressed] " + s
		}
		out = append(out, s)
	}
	return out
}

func wantDiag(t *testing.T, diags []analysis.Diagnostic, substr string, suppressed bool) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) && d.Suppressed == suppressed {
			return
		}
	}
	t.Errorf("no diagnostic matching %q (suppressed=%v); got %q", substr, suppressed, messages(diags))
}

func wantNoDiag(t *testing.T, diags []analysis.Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			t.Errorf("unwanted diagnostic %q; got %q", substr, messages(diags))
			return
		}
	}
}

func TestSuppressSameLineAndLineAbove(t *testing.T) {
	diags := checkSrc(t, "", `package p

func boom() {}

func f() {
	boom() //embrace:allow toy covered by integration test
	//embrace:allow toy covered by integration test
	boom()
}
`, toyAnalyzer("toy"))
	suppressed := 0
	for _, d := range diags {
		if d.Analyzer == "toy" {
			if !d.Suppressed {
				t.Errorf("unsuppressed toy finding: %s", d.Message)
			}
			suppressed++
		}
	}
	if suppressed != 2 {
		t.Errorf("suppressed %d toy findings, want 2", suppressed)
	}
	wantNoDiag(t, diags, "stale")
}

func TestBlockCommentDirective(t *testing.T) {
	diags := checkSrc(t, "", `package p

func boom() {}

func f() {
	/*embrace:allow toy block form is honored too*/ boom()
}
`, toyAnalyzer("toy"))
	wantDiag(t, diags, "boom call", true)
	wantNoDiag(t, diags, "stale")
	wantNoDiag(t, diags, "justification")
}

func TestMultiAnalyzerDirective(t *testing.T) {
	diags := checkSrc(t, "", `package p

func boom() {}

func f() {
	boom() //embrace:allow toy,toy2 one line silences both
}
`, toyAnalyzer("toy"), toyAnalyzer("toy2"))
	byName := map[string]int{}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("unsuppressed finding: %s (%s)", d.Message, d.Analyzer)
		}
		byName[d.Analyzer]++
	}
	if byName["toy"] != 1 || byName["toy2"] != 1 {
		t.Errorf("suppressed counts per analyzer = %v, want one each", byName)
	}
	wantNoDiag(t, diags, "stale")
}

func TestDirectiveOnFirstLine(t *testing.T) {
	// A directive on line 1 has no line above it; the audit must neither
	// panic nor associate it with anything, so it reports as stale.
	diags := checkSrc(t, "", `//embrace:allow toy nothing to suppress up here
package p

func boom() {}

func f() { boom() }
`, toyAnalyzer("toy"))
	wantDiag(t, diags, "boom call", false)
	wantDiag(t, diags, "stale embrace:allow toy", false)
}

func TestStaleDirective(t *testing.T) {
	diags := checkSrc(t, "", `package p

func fine() {}

func f() {
	fine() //embrace:allow toy this suppresses nothing anymore
}
`, toyAnalyzer("toy"))
	wantDiag(t, diags, "stale embrace:allow toy: suppresses no finding", false)
}

func TestUnknownAnalyzerDirective(t *testing.T) {
	diags := checkSrc(t, "", `package p

func boom() {}

func f() {
	boom() //embrace:allow nosuch justified but misaddressed
}
`, toyAnalyzer("toy"))
	wantDiag(t, diags, `unknown analyzer "nosuch"`, false)
	// The misaddressed directive must not suppress the finding.
	wantDiag(t, diags, "boom call", false)
}

func TestUnjustifiedAndEmptyDirectives(t *testing.T) {
	diags := checkSrc(t, "", `package p

func boom() {}

func f() {
	boom() //embrace:allow toy
	//embrace:allow
	boom()
}
`, toyAnalyzer("toy"))
	wantDiag(t, diags, "needs a justification", false)
	wantDiag(t, diags, "names no analyzer", false)
	// Neither malformed directive suppresses.
	unsuppressed := 0
	for _, d := range diags {
		if d.Analyzer == "toy" && !d.Suppressed {
			unsuppressed++
		}
	}
	if unsuppressed != 2 {
		t.Errorf("%d unsuppressed toy findings, want 2", unsuppressed)
	}
}

func TestDirectiveInsideTestdataDir(t *testing.T) {
	// Fixture packages under testdata use directives too (analyzers test
	// their own suppression paths); loading such a dir directly must honor
	// them like any other package.
	diags := checkSrc(t, "testdata", `package p

func boom() {}

func f() {
	boom() //embrace:allow toy fixtures carry directives too
}
`, toyAnalyzer("toy"))
	wantDiag(t, diags, "boom call", true)
	wantNoDiag(t, diags, "stale")
}
