// Package comm is a fixture standing in for the transport layer: the chaos
// fault injector promises replay-from-seed, so wall-clock reads and global
// randomness are forbidden here too.
package comm

import (
	"math/rand"
	"time"
)

// chaosStream mirrors the injector's per-stream state: a seeded generator is
// the approved pattern.
type chaosStream struct {
	rng *rand.Rand
}

func newStream(seed int64) *chaosStream {
	return &chaosStream{rng: rand.New(rand.NewSource(seed))} // constructors are fine
}

// decide draws fault decisions only from the stream's own generator.
func (s *chaosStream) decide(rate float64) bool {
	return s.rng.Float64() < rate // method on a plumbed generator: fine
}

// delayFor shows the legal use of time: an already-decided delay may sleep,
// because sleeping is not a clock read.
func delayFor(d time.Duration) {
	time.Sleep(d)
}

func flagged() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock in deterministic package comm`
	if rand.Float64() < 0.5 { // want `global rand\.Float64 in deterministic package comm`
		return 0
	}
	return time.Since(start) // want `time\.Since reads the wall clock in deterministic package comm`
}
