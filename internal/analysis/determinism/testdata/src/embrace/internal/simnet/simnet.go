// Package simnet is a fixture standing in for a deterministic package: the
// analyzer must flag wall-clock reads and global randomness here.
package simnet

import (
	"math/rand"
	"time"
)

// Event is a simulated occurrence.
type Event struct {
	At     time.Duration
	Jitter float64
}

func flagged() Event {
	start := time.Now() // want `time\.Now reads the wall clock in deterministic package simnet`
	e := Event{
		Jitter: rand.Float64(), // want `global rand\.Float64 in deterministic package simnet`
	}
	rand.Shuffle(1, func(i, j int) {}) // want `global rand\.Shuffle in deterministic package simnet`
	e.At = time.Since(start)           // want `time\.Since reads the wall clock in deterministic package simnet`
	return e
}

// allowed shows the approved pattern: an explicitly seeded generator plumbed
// in by the caller, and simulated time carried as plain durations.
func allowed(rng *rand.Rand, now time.Duration) Event {
	return Event{At: now + time.Duration(rng.Intn(100)), Jitter: rng.Float64()}
}

// seeded constructors are not draws; building a local generator is exactly
// what the analyzer pushes callers toward.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func justified() time.Time {
	//embrace:allow determinism fixture documents the escape hatch for genuinely wall-clock code
	return time.Now()
}
