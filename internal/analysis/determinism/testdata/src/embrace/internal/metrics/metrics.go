// Package metrics is a fixture standing in for genuinely wall-clock code:
// it is outside the deterministic set, so nothing here is flagged.
package metrics

import "time"

// Stamp reads the real clock — fine here.
func Stamp() time.Time { return time.Now() }

// Blocked measures a real wait — fine here.
func Blocked(start time.Time) time.Duration { return time.Since(start) }
