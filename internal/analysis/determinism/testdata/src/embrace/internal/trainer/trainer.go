// Package trainer is a fixture standing in for the span-instrumented
// trainer: recording spans through an injected clock is the approved
// pattern; reading the wall clock directly is the leak the analyzer exists
// to catch.
package trainer

import "time"

// Clock mirrors trace.Clock: the single injection point instrumented code
// may obtain time through.
type Clock func() time.Duration

// Span is a recorded phase.
type Span struct {
	Name string
	Dur  time.Duration
}

// timed shows the approved instrumentation shape: durations come from the
// injected clock, never from the package's own wall-clock reads.
func timed(clock Clock, name string, fn func()) Span {
	start := clock()
	fn()
	return Span{Name: name, Dur: clock() - start}
}

func flagged(name string, fn func()) Span {
	start := time.Now() // want `time\.Now reads the wall clock in deterministic package trainer`
	fn()
	return Span{Name: name, Dur: time.Since(start)} // want `time\.Since reads the wall clock in deterministic package trainer`
}
