// Package determinism enforces bit-reproducibility in the simulation and
// model packages.
//
// The paper's experiment tables are regenerated from simulation; equivalence
// tests assert that every strategy reaches bit-identical parameters given
// the same seed. Both guarantees die the moment a deterministic package
// reads the wall clock or draws from process-global randomness. This
// analyzer forbids, inside the deterministic packages (simnet, perfsim,
// sched, nn, data, tensor, strategies, and — since the chaos fault injector
// made its replay-from-seed promise — comm):
//
//   - time.Now and time.Since — wall-clock reads; simulated time must come
//     from the simulation's own clock;
//   - package-level math/rand draws (rand.Intn, rand.Float64, rand.Shuffle,
//     ...) — global-generator state depends on whatever else ran first.
//     Constructors (rand.New, rand.NewSource, rand.NewZipf, ...) are fine:
//     plumbing an explicitly seeded *rand.Rand is exactly the approved
//     pattern.
//
// Genuinely wall-clock code (metrics) lives outside the deterministic set
// and is untouched; within the set, a justified //embrace:allow determinism
// directive documents any necessary exception.
package determinism

import (
	"go/ast"
	"strings"

	"embrace/internal/analysis"
)

// deterministicPkgs are the import-path suffixes whose outputs must be pure
// functions of their seeds.
var deterministicPkgs = []string{
	"internal/simnet",
	"internal/perfsim",
	"internal/sched",
	"internal/nn",
	"internal/data",
	"internal/tensor",
	"internal/strategies",
	// The transport layer joined the set with the chaos injector: its fault
	// schedules must be pure functions of the plan seed, so its replay
	// guarantee dies with the first wall-clock read or global rand draw.
	// (time.Sleep is not a read and stays legal — timers bound how long an
	// already-decided fault holds a message, they never decide one.)
	"internal/comm",
	// The trainer joined the set with runtime tracing: instrumented code
	// must reach the clock only through an injected trace.Clock (the
	// recorder's default wall clock lives in the trace package, outside the
	// set), so a stray time.Now here is a tracing-layer leak.
	"internal/trainer",
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads and global math/rand draws in the deterministic simulation/model packages",
	Run:  run,
}

// covered reports whether the unit must be deterministic.
func covered(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range deterministicPkgs {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !covered(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || analysis.ReceiverType(fn) != nil {
			return true
		}
		switch analysis.PkgPathOf(fn) {
		case "time":
			switch fn.Name() {
			case "Now", "Since":
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in deterministic package %s: plumb simulated time instead",
					fn.Name(), pass.Pkg.Name())
			}
		case "math/rand", "math/rand/v2":
			// Constructors take explicit seeds and return plumbable
			// generators; everything else draws from the global generator.
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(),
					"global rand.%s in deterministic package %s: draw from a seeded *rand.Rand plumbed by the caller",
					fn.Name(), pass.Pkg.Name())
			}
		}
		return true
	})
	return nil, nil
}
