package determinism_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer,
		"embrace/internal/simnet",
		// A wall-clock package outside the deterministic set: no findings.
		"embrace/internal/metrics",
	)
}
