package determinism_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer,
		"embrace/internal/simnet",
		// The transport layer: deterministic since the chaos injector's
		// replay-from-seed guarantee. Seeded stream generators and sleeps
		// pass; clock reads and global draws are flagged.
		"embrace/internal/comm",
		// The trainer: span-instrumented code must reach the clock only
		// through an injected trace.Clock, never time.Now directly.
		"embrace/internal/trainer",
		// A wall-clock package outside the deterministic set: no findings.
		"embrace/internal/metrics",
	)
}
