// Package rawtag flags the legacy tag-based communication API outside the
// packages that own it.
//
// PR 1 fixed a real bug of this class: two call sites reused a hand-picked
// gather tag, so two logically distinct collectives shared a transport tag
// space and crosstalked (the "magic gather tag"). The Communicator's
// (op, step) addressing makes that collision structurally impossible, but
// only if callers actually use it — this analyzer is the ratchet that keeps
// hand-numbered tags from creeping back in. It reports:
//
//   - calls to the legacy tag-taking free functions of internal/collective
//     (RingAllReduce, AllToAll, Gather, ...), whose tags are caller-picked
//     integers with no collision protection;
//   - comm.Transport.Send/Recv calls whose tag argument is an integer
//     literal — a hand-numbered tag on the raw fabric.
//
// internal/collective and internal/comm are exempt: they implement the tag
// machinery and must speak raw tags.
package rawtag

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"embrace/internal/analysis"
)

// legacyFuncs are the tag-taking package-level collectives; every one has a
// Communicator (op, step) replacement.
var legacyFuncs = map[string]string{
	"Barrier":               "(*Communicator).Barrier",
	"Broadcast":             "(*Communicator).Broadcast",
	"ReduceScatter":         "(*Communicator).ReduceScatter",
	"RingAllReduce":         "(*Communicator).AllReduce",
	"RingAllReduceOp":       "(*Communicator).AllReduceWith",
	"AllGather":             "AllGatherVia",
	"AllToAll":              "AllToAllVia",
	"Gather":                "GatherVia",
	"SparseAllGather":       "(*Communicator).SparseAllGather",
	"SparseAllToAll":        "(*Communicator).SparseAllToAll",
	"HierarchicalAllReduce": "(*Communicator).HierarchicalAllReduce",
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "rawtag",
	Doc:  "forbid legacy integer-tag collectives and literal-tag Transport sends outside internal/collective and internal/comm",
	Run:  run,
}

// exempt reports whether the unit owns the tag machinery.
func exempt(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return strings.HasSuffix(path, "internal/collective") || strings.HasSuffix(path, "internal/comm")
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if strings.HasSuffix(analysis.PkgPathOf(fn), "internal/collective") && analysis.ReceiverType(fn) == nil {
			if repl, ok := legacyFuncs[fn.Name()]; ok {
				pass.Reportf(call.Pos(),
					"legacy tag-based collective.%s: migrate to the Communicator (op, step) API (%s)", fn.Name(), repl)
				return true
			}
		}
		if recv := analysis.ReceiverType(fn); recv != nil &&
			recv.Obj().Name() == "Transport" && recv.Obj().Pkg() != nil &&
			strings.HasSuffix(recv.Obj().Pkg().Path(), "internal/comm") {
			var tagArg ast.Expr
			switch fn.Name() {
			case "Send", "Recv":
				if len(call.Args) >= 2 {
					tagArg = call.Args[1]
				}
			}
			if tagArg != nil && (isIntLiteral(tagArg) || isConstInt(pass, tagArg)) {
				pass.Reportf(call.Pos(),
					"raw Transport.%s with a hand-numbered tag literal: allocate tags via Communicator.Tag (op, step)", fn.Name())
			}
		}
		return true
	})
	return nil, nil
}

// isIntLiteral matches 7, -7, +7 and parenthesized forms: the hand-numbered
// tags the Communicator exists to eliminate.
func isIntLiteral(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return v.Kind == token.INT
	case *ast.UnaryExpr:
		return (v.Op == token.SUB || v.Op == token.ADD) && isIntLiteral(v.X)
	}
	return false
}

// isConstInt matches named constants and constant arithmetic (a magic tag
// hidden behind `const gatherTag = 9999` is still a magic tag). Tags minted
// by Communicator.Tag are runtime values and never constant.
func isConstInt(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Int
}
