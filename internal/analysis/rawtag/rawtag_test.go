package rawtag_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/rawtag"
)

func TestRawTag(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawtag.Analyzer,
		"a",
		// The exempt package: raw tags inside internal/collective are the
		// implementation, not a violation.
		"embrace/internal/collective",
	)
}

// TestMagicGatherTagRegression proves the analyzer would have caught the
// PR-1 bug: two gathers sharing a hand-numbered tag.
func TestMagicGatherTagRegression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawtag.Analyzer, "regress")
}
