// Package comm is a hermetic stub of the repo's transport package, just
// enough surface for the rawtag fixtures to typecheck.
package comm

// Transport mirrors the real point-to-point interface.
type Transport interface {
	Rank() int
	Size() int
	Send(to, tag int, payload any) error
	Recv(from, tag int) (any, error)
}
