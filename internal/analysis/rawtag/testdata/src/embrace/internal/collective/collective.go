// Package collective is a hermetic stub of the repo's collective package:
// the legacy tag-based free functions (including ones the real package has
// since deleted — the analyzer must keep recognizing their shape) plus the
// Communicator replacement API.
package collective

import "embrace/internal/comm"

// RingAllReduce is a legacy tag-based collective.
func RingAllReduce(t comm.Transport, tag int, buf []float32) error { return nil }

// AllToAll is a legacy tag-based collective.
func AllToAll[T any](t comm.Transport, tag int, send []T) ([]T, error) { return send, nil }

// Gather is a legacy tag-based collective.
func Gather[T any](t comm.Transport, tag, root int, local T) ([]T, error) { return nil, nil }

// HierarchicalAllReduce is a legacy tag-based collective.
func HierarchicalAllReduce(t comm.Transport, tag, workersPerNode int, buf []float32) error {
	return nil
}

// Communicator is the replacement (op, step) API.
type Communicator struct{ t comm.Transport }

// NewCommunicator wraps t.
func NewCommunicator(t comm.Transport) *Communicator { return &Communicator{t: t} }

// Tag maps (op, step) to a collision-free transport tag.
func (c *Communicator) Tag(op string, step int) (int, error) { return 0, nil }

// AllReduce is the Communicator replacement for RingAllReduce.
func (c *Communicator) AllReduce(op string, step int, buf []float32) error { return nil }

// GatherVia is the Communicator replacement for Gather.
func GatherVia[T any](c *Communicator, op string, step, root int, local T) ([]T, error) {
	return nil, nil
}

// insideOwnPackage shows the exemption: the package owning the tag machinery
// may use raw tags freely (no diagnostics expected here).
func insideOwnPackage(t comm.Transport) error {
	if err := RingAllReduce(t, 1, nil); err != nil {
		return err
	}
	return t.Send(0, 7, nil)
}
