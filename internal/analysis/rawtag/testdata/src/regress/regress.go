// Package regress reproduces the shape of the PR-1 "magic gather tag" bug:
// two logically distinct gathers hand-numbered with the same tag, so their
// messages crosstalk on the shared (sender, tag) envelope. rawtag must catch
// both call sites — proving the lint would have caught the original bug at
// `make check` time instead of in a flaky integration test.
package regress

import (
	"embrace/internal/collective"
	"embrace/internal/comm"
)

const magicGatherTag = 9999

func collectFinalState(t comm.Transport, shard, stats []float32) error {
	// Both gathers reuse magicGatherTag — rank 0 can receive a stats
	// payload while assembling the embedding table.
	if _, err := collective.Gather(t, magicGatherTag, 0, shard); err != nil { // want `legacy tag-based collective\.Gather`
		return err
	}
	_, err := collective.Gather(t, magicGatherTag, 0, stats) // want `legacy tag-based collective\.Gather`
	return err
}
