// Package a seeds rawtag violations and allowed patterns.
package a

import (
	"embrace/internal/collective"
	"embrace/internal/comm"
)

func flagged(t comm.Transport, buf []float32) error {
	if err := collective.RingAllReduce(t, 1, buf); err != nil { // want `legacy tag-based collective\.RingAllReduce`
		return err
	}
	if _, err := collective.AllToAll(t, 2, []int{1}); err != nil { // want `legacy tag-based collective\.AllToAll`
		return err
	}
	if err := collective.HierarchicalAllReduce(t, 3, 4, buf); err != nil { // want `legacy tag-based collective\.HierarchicalAllReduce`
		return err
	}
	if err := t.Send(1, 42, buf); err != nil { // want `raw Transport\.Send with a hand-numbered tag literal`
		return err
	}
	_, err := t.Recv(0, -7) // want `raw Transport\.Recv with a hand-numbered tag literal`
	return err
}

func allowed(t comm.Transport, buf []float32) error {
	c := collective.NewCommunicator(t)
	if err := c.AllReduce("dense/grad", 0, buf); err != nil {
		return err
	}
	if _, err := collective.GatherVia(c, "stats", 0, 0, 1.0); err != nil {
		return err
	}
	// A computed tag is the Communicator handing out tag ranges, not a
	// hand-numbered constant.
	tag, err := c.Tag("raw/proto", 0)
	if err != nil {
		return err
	}
	if err := t.Send(1, tag, buf); err != nil {
		return err
	}
	//embrace:allow rawtag exercising the suppression mechanism itself
	return collective.RingAllReduce(t, 9, buf)
}
