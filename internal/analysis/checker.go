package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// AllowPrefix is the suppression directive: `//embrace:allow <analyzer>
// <justification>` on the finding's line (or the line directly above)
// silences that analyzer there. The justification is mandatory — an
// unjustified directive is itself a finding. The directive is also honored
// in block form (`/*embrace:allow ...*/`).
const AllowPrefix = "//embrace:allow"

// directive is one parsed //embrace:allow comment.
type directive struct {
	pos       token.Pos
	analyzers []string
	justified bool
	// hits counts the findings this directive suppressed in the current
	// Check; a justified directive that suppresses nothing is stale and
	// reported, so dead suppressions cannot silently accumulate.
	hits int
}

// parseDirectives extracts the allow directives of a file, keyed by the line
// they appear on. Both line comments and single-line block comments are
// recognized.
func parseDirectives(fset *token.FileSet, file *ast.File) map[int]*directive {
	out := make(map[int]*directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := directiveRest(c.Text)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			d := &directive{pos: c.Pos()}
			if len(fields) > 0 {
				d.analyzers = strings.Split(fields[0], ",")
				d.justified = len(fields) > 1
			}
			out[fset.Position(c.Pos()).Line] = d
		}
	}
	return out
}

// directiveRest returns the text after the embrace:allow marker, accepting
// //-comments and /* */-comments (first line only).
func directiveRest(text string) (string, bool) {
	body, block := strings.CutPrefix(text, "/*")
	if block {
		text = "//" + body
	}
	rest, ok := strings.CutPrefix(text, AllowPrefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	if block {
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			rest = rest[:i]
		}
		rest = strings.TrimSuffix(strings.TrimRight(rest, " \t"), "*/")
	}
	return rest, true
}

func (d *directive) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// AnalyzerStats accumulates one analyzer's tallies across the units a
// Runner checks.
type AnalyzerStats struct {
	// Findings counts diagnostics that survived suppression.
	Findings int
	// Suppressed counts diagnostics silenced by justified directives.
	Suppressed int
	// Elapsed is total wall time in the analyzer's Summarize/Finish/Run
	// hooks.
	Elapsed time.Duration
}

// Runner executes a set of analyzers over a whole program: NewRunner builds
// the call graph and runs every analyzer's Summarize/Finish phases, then
// Check audits one unit at a time. Findings suppressed by justified
// directives are returned with Suppressed set rather than dropped, so
// drivers can expose the full audit trail.
type Runner struct {
	Analyzers []*Analyzer
	Fset      *token.FileSet
	Program   *Program
	// Stats tallies findings and time per analyzer name.
	Stats map[string]*AnalyzerStats
}

// NewRunner builds the program over units and runs the summary phases.
func NewRunner(analyzers []*Analyzer, fset *token.FileSet, units []*Package) *Runner {
	r := &Runner{
		Analyzers: analyzers,
		Fset:      fset,
		Program:   NewProgram(fset, units),
		Stats:     make(map[string]*AnalyzerStats),
	}
	for _, a := range analyzers {
		r.Stats[a.Name] = &AnalyzerStats{}
		if a.Summarize == nil && a.Finish == nil {
			continue
		}
		start := time.Now()
		if a.Summarize != nil {
			for _, unit := range units {
				a.Summarize(&Pass{
					Analyzer:  a,
					Fset:      fset,
					Files:     unit.Files,
					Pkg:       unit.Types,
					TypesInfo: unit.Info,
					Program:   r.Program,
					report:    func(Diagnostic) {},
				})
			}
		}
		if a.Finish != nil {
			a.Finish(r.Program)
		}
		r.Stats[a.Name].Elapsed += time.Since(start)
	}
	return r
}

// Check executes the analyzers over one unit and returns its diagnostics
// sorted by position: findings (suppressed ones marked), plus directive
// audits — unjustified directives, directives naming analyzers outside the
// active set, and stale directives that suppressed nothing this run.
func (r *Runner) Check(unit *Package) ([]Diagnostic, error) {
	allow := make(map[string]map[int]*directive, len(unit.Files))
	for _, f := range unit.Files {
		allow[r.Fset.Position(f.Pos()).Filename] = parseDirectives(r.Fset, f)
	}

	var diags []Diagnostic
	for _, a := range r.Analyzers {
		start := time.Now()
		pass := &Pass{
			Analyzer:  a,
			Fset:      r.Fset,
			Files:     unit.Files,
			Pkg:       unit.Types,
			TypesInfo: unit.Info,
			Program:   r.Program,
		}
		pass.report = func(d Diagnostic) {
			pos := r.Fset.Position(d.Pos)
			if dirs, ok := allow[pos.Filename]; ok {
				for _, line := range []int{pos.Line, pos.Line - 1} {
					if dir, ok := dirs[line]; ok && dir.covers(a.Name) && dir.justified {
						dir.hits++
						d.Suppressed = true
						break
					}
				}
			}
			if d.Suppressed {
				r.Stats[a.Name].Suppressed++
			} else {
				r.Stats[a.Name].Findings++
			}
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, unit.Path, err)
		}
		r.Stats[a.Name].Elapsed += time.Since(start)
	}

	// Directive audit. Malformed or unjustified directives defeat the audit
	// trail the mechanism exists for; unknown names and stale suppressions
	// are dead weight that hides real exceptions among expired ones.
	active := map[string]bool{"all": true}
	for _, a := range r.Analyzers {
		active[a.Name] = true
	}
	for _, dirs := range allow {
		for _, d := range dirs {
			switch {
			case len(d.analyzers) == 0:
				diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "allow",
					Message: "embrace:allow directive names no analyzer"})
			case !d.justified:
				diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "allow",
					Message: fmt.Sprintf("embrace:allow %s needs a justification", strings.Join(d.analyzers, ","))})
			default:
				unknown := ""
				for _, name := range d.analyzers {
					if !active[name] {
						unknown = name
						break
					}
				}
				if unknown != "" {
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "allow",
						Message: fmt.Sprintf("embrace:allow names unknown analyzer %q (active: %s)", unknown, activeNames(r.Analyzers))})
				} else if d.hits == 0 {
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "allow",
						Message: fmt.Sprintf("stale embrace:allow %s: suppresses no finding — remove it", strings.Join(d.analyzers, ","))})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

func activeNames(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Run executes the analyzers over one package unit in isolation — a
// convenience wrapper building a single-unit Runner. Interprocedural
// analyzers see only this unit's functions; drivers that want cross-package
// facts must pool units through NewRunner themselves.
func Run(analyzers []*Analyzer, pkg *Package, fset *token.FileSet) ([]Diagnostic, error) {
	return NewRunner(analyzers, fset, []*Package{pkg}).Check(pkg)
}
