package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AllowPrefix is the suppression directive: `//embrace:allow <analyzer>
// <justification>` on the finding's line (or the line directly above)
// silences that analyzer there. The justification is mandatory — an
// unjustified directive is itself a finding.
const AllowPrefix = "//embrace:allow"

// directive is one parsed //embrace:allow comment.
type directive struct {
	pos       token.Pos
	analyzers []string
	justified bool
}

// parseDirectives extracts the allow directives of a file, keyed by the line
// they appear on.
func parseDirectives(fset *token.FileSet, file *ast.File) map[int]directive {
	out := make(map[int]directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			fields := strings.Fields(rest)
			d := directive{pos: c.Pos()}
			if len(fields) > 0 {
				d.analyzers = strings.Split(fields[0], ",")
				d.justified = len(fields) > 1
			}
			out[fset.Position(c.Pos()).Line] = d
		}
	}
	return out
}

func (d directive) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// Run executes the analyzers over one package unit and returns the surviving
// diagnostics sorted by position: suppressed findings are dropped, and
// malformed or unjustified directives are reported.
func Run(analyzers []*Analyzer, pkg *Package, fset *token.FileSet) ([]Diagnostic, error) {
	allow := make(map[string]map[int]directive, len(pkg.Files))
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		dirs := parseDirectives(fset, f)
		allow[name] = dirs
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			if dirs, ok := allow[pos.Filename]; ok {
				for _, line := range []int{pos.Line, pos.Line - 1} {
					if dir, ok := dirs[line]; ok && dir.covers(a.Name) && dir.justified {
						return
					}
				}
			}
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}

	// Unjustified or unparseable directives defeat the audit trail the
	// mechanism exists for; flag them wherever they appear.
	for _, dirs := range allow {
		for _, d := range dirs {
			if len(d.analyzers) == 0 {
				diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "allow",
					Message: "embrace:allow directive names no analyzer"})
			} else if !d.justified {
				diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "allow",
					Message: fmt.Sprintf("embrace:allow %s needs a justification", strings.Join(d.analyzers, ","))})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
