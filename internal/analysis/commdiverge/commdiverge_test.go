package commdiverge_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/commdiverge"
)

func TestCommDiverge(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), commdiverge.Analyzer,
		"embrace/internal/collective", "a", "regress")
}
