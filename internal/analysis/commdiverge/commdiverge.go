// Package commdiverge detects SPMD schedule divergence: a collective
// operation reachable only under control flow conditioned on the caller's
// rank. Collectives are rendezvous points — every rank must issue the same
// sequence with the same op/step identity, and a branch that lets rank 0
// gather while the others skip (PR 1's magic-gather-tag bug shape)
// deadlocks or silently mismatches tensors.
//
// Rank taint starts at any niladic Rank() call and spreads
// interprocedurally through the call graph: into parameters fed a rank,
// struct fields assigned one (n.rank = cm.Rank(), node{rank: cm.Rank()}),
// and functions returning one. Taint rides only on integer and boolean
// values — the types that can discriminate ranks in a condition. Errors,
// tensors, and structs may be rank-influenced (a per-rank shard, an error
// naming the failing rank) but branching on them does not partition the
// world by rank identity, and propagating through them would flag every
// `if err != nil` downstream of a rank-stamped error. Within a function, any if/switch whose
// condition touches a rank-tainted value must schedule the same collectives
// on every arm — collectives reached through callees count, via transitive
// summaries — and literal op/step arguments must agree across arms. A
// rank-conditioned arm that returns early while collectives follow the
// branch is the same bug in tail position.
//
// Point-to-point Send/Recv are exempt: they are inherently asymmetric.
// Justified exceptions: //embrace:allow commdiverge <why the schedule still
// matches>.
package commdiverge

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"sort"
	"strings"

	"embrace/internal/analysis"
)

const ns = "commdiverge"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name:   "commdiverge",
	Doc:    "forbid collectives reachable only under rank-conditioned control flow, and mismatched op/step literals across rank branches",
	Finish: finish,
	Run:    run,
}

// argIdx gives the positions of the op and step arguments of a collective.
type argIdx struct{ op, step int }

// collectiveMethods are Communicator methods that rendezvous all ranks.
// sendRaw/recvRaw/Send/Recv are deliberately absent.
var collectiveMethods = map[string]argIdx{
	"AllReduce":             {0, 1},
	"AllReduceWith":         {0, 1},
	"ReduceScatter":         {0, 1},
	"Broadcast":             {0, 1},
	"Barrier":               {0, 1},
	"SparseAllGather":       {0, 1},
	"SparseAllToAll":        {0, 1},
	"AlltoAllSparse":        {0, 1},
	"AlltoAllSparseCodec":   {0, 1},
	"HierarchicalAllReduce": {0, 1},
}

// collectiveFuncs are package-level collective entry points.
var collectiveFuncs = map[string]argIdx{
	"AllGatherVia": {1, 2},
	"AllToAllVia":  {1, 2},
	"GatherVia":    {1, 2},
}

// state is the program-wide result of the Finish fixpoint, stored as one
// fact so per-unit Run passes share it.
type state struct {
	// rankFields holds field keys (pkgpath.Type.Field) ever assigned a
	// rank-derived value.
	rankFields map[string]bool
	// rankParams holds, per function key, the parameter indices fed a
	// rank-derived argument at some call site.
	rankParams map[string]map[int]bool
	// returnsRank marks functions returning a rank-derived value.
	returnsRank map[string]bool
	// reach holds each function's transitive collective schedule: the
	// multiset of collective signatures it or any callee issues.
	reach map[string][]string
}

func getState(prog *analysis.Program) *state {
	if v, ok := prog.Fact(ns, "state"); ok {
		return v.(*state)
	}
	return nil
}

// finish computes rank taint and collective reach over the whole program.
func finish(prog *analysis.Program) {
	st := &state{
		rankFields:  map[string]bool{},
		rankParams:  map[string]map[int]bool{},
		returnsRank: map[string]bool{},
		reach:       map[string][]string{},
	}
	prog.ExportFact(ns, "state", st)

	// Rank-taint fixpoint: each round re-runs every function's local flow
	// with the seeds discovered so far and records new fields, parameters,
	// and returns; the maps only grow, so this terminates.
	for range prog.Funcs {
		changed := false
		for _, fn := range prog.Funcs {
			flow := newRankFlow(st, fn)
			flow.Propagate(fn.Decl.Body)
			info := fn.Unit.Info
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i := range n.Lhs {
						sel, ok := ast.Unparen(n.Lhs[i]).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if !rankCarrier(info.TypeOf(sel)) {
							continue
						}
						if _, tainted := flow.SourceKey(n.Rhs[i]); !tainted {
							continue
						}
						if fk := fieldKey(info, sel); fk != "" && !st.rankFields[fk] {
							st.rankFields[fk] = true
							changed = true
						}
					}
				case *ast.CompositeLit:
					changed = recordLitFields(st, info, n, flow) || changed
				case *ast.CallExpr:
					callee := analysis.CalleeFunc(info, n)
					if callee == nil {
						return true
					}
					key := analysis.FuncKeyOf(callee)
					sig, ok := callee.Type().(*types.Signature)
					if !ok {
						return true
					}
					for ai, arg := range n.Args {
						if !rankCarrier(info.TypeOf(arg)) {
							continue
						}
						if _, tainted := flow.SourceKey(arg); !tainted {
							continue
						}
						pi := ai
						if pi >= sig.Params().Len() {
							if !sig.Variadic() {
								continue
							}
							pi = sig.Params().Len() - 1
						}
						if st.rankParams[key] == nil {
							st.rankParams[key] = map[int]bool{}
						}
						if !st.rankParams[key][pi] {
							st.rankParams[key][pi] = true
							changed = true
						}
					}
				case *ast.ReturnStmt:
					if st.returnsRank[fn.Key] {
						return true
					}
					for _, res := range n.Results {
						if !rankCarrier(info.TypeOf(res)) {
							continue
						}
						if _, tainted := flow.SourceKey(res); tainted {
							st.returnsRank[fn.Key] = true
							changed = true
							break
						}
					}
				}
				return true
			})
		}
		if !changed {
			break
		}
	}

	// Transitive collective schedules: union callee schedules to a fixpoint
	// (cycle-safe, bounded by graph depth).
	direct := map[string][]string{}
	for key, fn := range prog.Funcs {
		var sigs []string
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if s := classify(fn.Unit.Info, call); s != "" {
					sigs = append(sigs, s)
				}
			}
			return true
		})
		direct[key] = sigs
		st.reach[key] = append([]string(nil), sigs...)
	}
	for range prog.Funcs {
		changed := false
		for key, fn := range prog.Funcs {
			merged := append([]string(nil), direct[key]...)
			for _, callee := range fn.Callees {
				if callee == key {
					continue
				}
				merged = append(merged, st.reach[callee]...)
			}
			merged = dedupe(merged)
			if !equalSigs(merged, st.reach[key]) {
				st.reach[key] = merged
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// recordLitFields taints struct fields initialized with rank-derived values
// in a composite literal (node{rank: cm.Rank()}).
func recordLitFields(st *state, info *types.Info, lit *ast.CompositeLit, flow *analysis.Flow) bool {
	t := info.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	strct, ok := named.Underlying().(*types.Struct)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	prefix := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
	changed := false
	for i, elt := range lit.Elts {
		name := ""
		val := elt
		var ft types.Type
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				name = id.Name
				for fi := 0; fi < strct.NumFields(); fi++ {
					if strct.Field(fi).Name() == name {
						ft = strct.Field(fi).Type()
						break
					}
				}
			}
			val = kv.Value
		} else if i < strct.NumFields() {
			name = strct.Field(i).Name()
			ft = strct.Field(i).Type()
		}
		if name == "" || !rankCarrier(ft) {
			continue
		}
		if _, tainted := flow.SourceKey(val); tainted && !st.rankFields[prefix+name] {
			st.rankFields[prefix+name] = true
			changed = true
		}
	}
	return changed
}

// newRankFlow builds the taint engine for one function: seeds its
// rank-tainted parameters and classifies rank sources.
func newRankFlow(st *state, fn *analysis.FuncNode) *analysis.Flow {
	info := fn.Unit.Info
	flow := analysis.NewFlow(info, func(e ast.Expr) (string, bool) {
		switch e := e.(type) {
		case *ast.CallExpr:
			callee := analysis.CalleeFunc(info, e)
			if callee == nil {
				return "", false
			}
			if callee.Name() == "Rank" && len(e.Args) == 0 {
				return "rank", true
			}
			if st.returnsRank[analysis.FuncKeyOf(callee)] {
				return "rank", true
			}
		case *ast.SelectorExpr:
			if fk := fieldKey(info, e); fk != "" && st.rankFields[fk] {
				return "rank", true
			}
		}
		return "", false
	})
	// Rank taint rides only on integer/boolean values; see rankCarrier.
	flow.Narrow = func(lhs ast.Expr) bool { return rankCarrier(info.TypeOf(lhs)) }
	idx := 0
	for _, f := range fn.Decl.Type.Params.List {
		for _, nm := range f.Names {
			if st.rankParams[fn.Key][idx] {
				flow.Tainted[nm.Name] = "rank"
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return flow
}

// fieldKey names a struct field selection pkgpath.Type.Field, or "".
func fieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	t := selection.Recv()
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + selection.Obj().Name()
}

// classify renders a call as a collective signature "Name(op, step)" with
// constant arguments spelled out ("?" when not constant), or "" for
// non-collective calls. Only the collective package's entry points count.
func classify(info *types.Info, call *ast.CallExpr) string {
	callee := analysis.CalleeFunc(info, call)
	if callee == nil {
		return ""
	}
	pkg := analysis.PkgPathOf(callee)
	if pkg != "collective" && !strings.HasSuffix(pkg, "/collective") {
		return ""
	}
	var idx argIdx
	if analysis.ReceiverType(callee) != nil {
		var ok bool
		if idx, ok = collectiveMethods[callee.Name()]; !ok {
			return ""
		}
	} else {
		var ok bool
		if idx, ok = collectiveFuncs[callee.Name()]; !ok {
			return ""
		}
	}
	return fmt.Sprintf("%s(%s, %s)", callee.Name(), litString(info, call, idx.op), litString(info, call, idx.step))
}

func litString(info *types.Info, call *ast.CallExpr, i int) string {
	if i >= len(call.Args) {
		return "?"
	}
	if tv, ok := info.Types[call.Args[i]]; ok && tv.Value != nil {
		return tv.Value.String()
	}
	return "?"
}

func dedupe(sigs []string) []string {
	sort.Strings(sigs)
	out := sigs[:0]
	for i, s := range sigs {
		if i == 0 || s != sigs[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func equalSigs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) (any, error) {
	prog := pass.Program
	if prog == nil {
		return nil, nil
	}
	st := getState(prog)
	if st == nil {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := analysis.DeclKey(pass.TypesInfo, fd)
			fn := prog.Funcs[key]
			if fn == nil {
				continue
			}
			checkFunc(pass, st, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, st *state, fn *analysis.FuncNode) {
	info := fn.Unit.Info
	flow := newRankFlow(st, fn)
	flow.Propagate(fn.Decl.Body)

	// COMMDIVERGE_DEBUG=1 prints every tainted leaf expression, for triaging
	// unexpected rank taint without editing the analyzer.
	debug := os.Getenv("COMMDIVERGE_DEBUG") != ""
	condTainted := func(cond ast.Expr) bool {
		tainted := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if tainted && !debug {
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				if _, ok := flow.SourceKey(e); ok {
					if _, isBin := e.(*ast.BinaryExpr); debug && !isBin {
						fmt.Fprintf(os.Stderr, "commdiverge: taint %s: %s\n", fn.Key, types.ExprString(e))
					}
					tainted = true
					return debug
				}
			}
			return true
		})
		return tainted
	}

	// branchSigs collects the collective schedule of a subtree: direct
	// calls plus each callee's transitive reach.
	var branchSigs func(n ast.Node) []string
	branchSigs = func(n ast.Node) []string {
		var sigs []string
		if n == nil {
			return sigs
		}
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if s := classify(info, call); s != "" {
				sigs = append(sigs, s)
				return true
			}
			if callee := analysis.CalleeFunc(info, call); callee != nil {
				sigs = append(sigs, st.reach[analysis.FuncKeyOf(callee)]...)
			}
			return true
		})
		sort.Strings(sigs)
		return sigs
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if !condTainted(n.Cond) {
				return true
			}
			thenSigs := branchSigs(n.Body)
			elseSigs := branchSigs(n.Else)
			if !equalSigs(thenSigs, elseSigs) {
				if equalSigs(names(thenSigs), names(elseSigs)) {
					pass.Reportf(n.Pos(), "rank-conditioned branches issue the same collectives with different op/step identity: %s vs %s — every rank must agree",
						join(thenSigs), join(elseSigs))
				} else {
					only, arm := diff(thenSigs, elseSigs)
					pass.Reportf(n.Pos(), "rank-conditioned branch issues %s with no matching collective on the %s arm: ranks taking the other path will never rendezvous",
						join(only), arm)
				}
				return true
			}
			if diverts(n.Body) != divertsElse(n.Else) {
				if tail := tailSigs(branchSigs, fn.Decl.Body, n); len(tail) > 0 {
					pass.Reportf(n.Pos(), "rank-conditioned early exit skips %s issued later in %s: every rank must reach the collective",
						join(tail), fn.Decl.Name.Name)
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil || !condTainted(n.Tag) {
				return true
			}
			var arms [][]string
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				var arm []string
				for _, s := range cc.Body {
					arm = append(arm, branchSigs(s)...)
				}
				sort.Strings(arm)
				arms = append(arms, arm)
			}
			if !hasDefault {
				arms = append(arms, nil) // ranks matching no case run nothing
			}
			for i := 1; i < len(arms); i++ {
				if !equalSigs(arms[i], arms[0]) {
					pass.Reportf(n.Pos(), "rank-conditioned switch schedules different collectives across cases (%s vs %s): every rank must agree",
						join(arms[0]), join(arms[i]))
					break
				}
			}
		}
		return true
	})
}

// diverts reports whether a statement always leaves the enclosing flow
// (return, break/continue/goto, panic).
func diverts(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return diverts(s.List[len(s.List)-1])
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func divertsElse(s ast.Stmt) bool {
	if s == nil {
		return false
	}
	return diverts(s)
}

// tailSigs collects the collective schedule issued after the if statement
// in the enclosing body — what an early-exiting rank would skip.
func tailSigs(branchSigs func(ast.Node) []string, body *ast.BlockStmt, ifStmt *ast.IfStmt) []string {
	var sigs []string
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= ifStmt.End() {
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			sigs = append(sigs, branchSigs(call)...)
			return false
		}
		return true
	})
	sort.Strings(sigs)
	return sigs
}

// names strips argument lists, leaving the collective method multiset.
func names(sigs []string) []string {
	out := make([]string, len(sigs))
	for i, s := range sigs {
		if j := strings.IndexByte(s, '('); j >= 0 {
			s = s[:j]
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// diff returns the signatures present in one arm but not the other, and
// which arm lacks them.
func diff(thenSigs, elseSigs []string) ([]string, string) {
	count := map[string]int{}
	for _, s := range thenSigs {
		count[s]++
	}
	for _, s := range elseSigs {
		count[s]--
	}
	var extra []string
	arm := "sibling"
	for s, c := range count {
		for ; c > 0; c-- {
			extra = append(extra, s)
			arm = "else"
		}
		for ; c < 0; c++ {
			extra = append(extra, s)
			arm = "then"
		}
	}
	sort.Strings(extra)
	return extra, arm
}

func join(sigs []string) string {
	if len(sigs) == 0 {
		return "none"
	}
	return strings.Join(sigs, ", ")
}

// rankCarrier reports whether a value of type t can discriminate ranks in
// control flow: integers (the rank itself, arithmetic over it) and booleans
// (predicates over it). Errors, tensors, and structs may be rank-influenced
// — a per-rank data shard, an error naming the failing rank — but branching
// on them does not partition the world by rank identity, and propagating
// taint through them flags every `if err != nil` in the module.
func rankCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}
