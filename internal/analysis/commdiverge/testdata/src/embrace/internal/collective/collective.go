// Package collective is a stub of the real collective package: the rank
// accessor, a few collectives, and the point-to-point pair the analyzer
// must exempt.
package collective

// Communicator is the stub transport handle.
type Communicator struct {
	rank, size int
}

func (c *Communicator) Rank() int { return c.rank }

func (c *Communicator) Size() int { return c.size }

func (c *Communicator) AllReduce(op string, step int, buf []float32) error { return nil }

func (c *Communicator) Broadcast(op string, step, root int, buf []float32) error { return nil }

func (c *Communicator) Barrier(op string, step int) error { return nil }

func (c *Communicator) Send(op string, step, to int, payload any) error { return nil }

func (c *Communicator) Recv(op string, step, from int) (any, error) { return nil, nil }

func GatherVia[T any](c *Communicator, op string, step, root int, local T) ([]T, error) {
	return nil, nil
}
