// Package regress reproduces the PR-1 magic-gather-tag-era bug shape: a
// gather issued only on rank 0, which deadlocks every other rank's next
// collective. The analyzer must report it without suppression.
package regress

import "embrace/internal/collective"

func gatherStats(cm *collective.Communicator, buf []float32) {
	if cm.Rank() == 0 { // want `no matching collective`
		_, _ = collective.GatherVia(cm, "stats", 7, 0, buf)
	}
}
