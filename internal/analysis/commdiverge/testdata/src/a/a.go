// Package a exercises commdiverge: divergent schedules under every flavor
// of rank taint, and the symmetric patterns that must stay silent.
package a

import "embrace/internal/collective"

// symmetric issues the same collective on both arms — silent.
func symmetric(cm *collective.Communicator, buf []float32) {
	if cm.Rank() == 0 {
		_ = cm.AllReduce("grad", 1, buf)
	} else {
		_ = cm.AllReduce("grad", 1, buf)
	}
}

// missingSibling runs a collective on one arm only.
func missingSibling(cm *collective.Communicator, buf []float32) {
	if cm.Rank() == 0 { // want `no matching collective`
		_ = cm.AllReduce("grad", 1, buf)
	}
}

// opMismatch agrees on the method but not the op literal.
func opMismatch(cm *collective.Communicator, buf []float32) {
	if cm.Rank() == 0 { // want `different op/step identity`
		_ = cm.AllReduce("grad", 1, buf)
	} else {
		_ = cm.AllReduce("loss", 1, buf)
	}
}

// stepMismatch agrees on op but not step.
func stepMismatch(cm *collective.Communicator, buf []float32) {
	if cm.Rank() == 0 { // want `different op/step identity`
		_ = cm.AllReduce("grad", 1, buf)
	} else {
		_ = cm.AllReduce("grad", 2, buf)
	}
}

// earlyExit returns before the barrier on every rank but 0.
func earlyExit(cm *collective.Communicator) error {
	if cm.Rank() != 0 { // want `early exit skips`
		return nil
	}
	return cm.Barrier("sync", 3)
}

// earlyExitSymmetric exits after the collective every rank reached — silent.
func earlyExitSymmetric(cm *collective.Communicator) error {
	if err := cm.Barrier("sync", 3); err != nil {
		return err
	}
	if cm.Rank() != 0 {
		return nil
	}
	return nil
}

// viaHelper hides the collective one call deep.
func viaHelper(cm *collective.Communicator, buf []float32) {
	if cm.Rank() == 0 { // want `no matching collective`
		gatherAll(cm, buf)
	}
}

func gatherAll(cm *collective.Communicator, buf []float32) {
	_, _ = collective.GatherVia(cm, "stats", 7, 0, buf)
}

// rankParam feeds a rank into a helper's parameter.
func rankParam(cm *collective.Communicator) {
	syncIf(cm, cm.Rank())
}

func syncIf(cm *collective.Communicator, r int) {
	if r == 0 { // want `no matching collective`
		_ = cm.Barrier("join", 1)
	}
}

// node stores its rank at construction; methods branching on the field are
// rank-conditioned.
type node struct {
	cm   *collective.Communicator
	rank int
}

func build(cm *collective.Communicator) *node {
	return &node{cm: cm, rank: cm.Rank()}
}

func (n *node) sync() {
	if n.rank == 0 { // want `no matching collective`
		_ = n.cm.Barrier("roll", 2)
	}
}

// derived reaches the branch through rank arithmetic and a boolean.
func derived(cm *collective.Communicator, buf []float32) {
	leader := (cm.Rank() / 4) * 4
	isLeader := cm.Rank() == leader
	if isLeader { // want `no matching collective`
		_ = cm.AllReduce("grad", 1, buf)
	}
}

// switchRank schedules a collective in one case only; ranks matching no
// case run nothing.
func switchRank(cm *collective.Communicator, buf []float32) {
	switch cm.Rank() { // want `different collectives across cases`
	case 0:
		_ = cm.AllReduce("grad", 1, buf)
	}
}

// switchSymmetric covers every rank with the same schedule — silent.
func switchSymmetric(cm *collective.Communicator, buf []float32) {
	switch cm.Rank() {
	case 0:
		_ = cm.AllReduce("grad", 1, buf)
	default:
		_ = cm.AllReduce("grad", 1, buf)
	}
}

// dataConditioned branches on data, not rank — silent.
func dataConditioned(cm *collective.Communicator, buf []float32) {
	if len(buf) > 0 {
		_ = cm.AllReduce("grad", 1, buf)
	}
}

// pointToPoint is inherently asymmetric and exempt — silent.
func pointToPoint(cm *collective.Communicator) {
	if cm.Rank() != 0 {
		_ = cm.Send("ctl", 1, 0, nil)
		return
	}
	_, _ = cm.Recv("ctl", 1, 1)
}
