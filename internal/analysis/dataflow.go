package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Flow is a small intraprocedural taint engine shared by the
// interprocedural analyzers. Variables are keyed by their printed
// expression form (the locksend idiom): "buf", "h.arena", "sc.bucket" — a
// deliberate trade of aliasing precision for zero dependence on SSA. Taint
// starts at expressions the analyzer's Source hook recognizes (an arena
// accessor call, a Rank() read) and propagates through assignments,
// derivations (slicing, indexing, field selection, address-of, composite
// literals), and range statements to a fixpoint. The engine is
// flow-insensitive: ordering questions (use-after-reuse) are answered by
// the analyzers' own source-order replays on top of the final map.
type Flow struct {
	Info *types.Info
	// Source classifies an expression as a fresh taint origin, returning
	// the source key findings should name. It is consulted before variable
	// lookup, on every sub-expression SourceKey unwraps.
	Source func(e ast.Expr) (string, bool)
	// Tainted maps variable key -> source key. First writer wins; the map
	// may be pre-seeded (e.g. with tainted parameters).
	Tainted map[string]string
	// Narrow, when set, vetoes tainting an assignment target — e.g.
	// arenalife restricts tracking to types that can alias memory, so a
	// scalar copied out of a pooled buffer is not mistaken for a view.
	Narrow func(lhs ast.Expr) bool
}

// NewFlow returns an engine over info with the given source classifier.
func NewFlow(info *types.Info, source func(ast.Expr) (string, bool)) *Flow {
	return &Flow{Info: info, Source: source, Tainted: make(map[string]string)}
}

// Key returns the variable key of an assignable expression: identifiers and
// field selections key by printed form; anything else (index expressions,
// the blank identifier) is untracked.
func (f *Flow) Key(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return "", false
		}
		return e.Name, true
	case *ast.SelectorExpr:
		return types.ExprString(e), true
	}
	return "", false
}

// SourceKey reports whether e evaluates to a tainted value and, if so, the
// key of the source it derives from.
func (f *Flow) SourceKey(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if f.Source != nil {
		if s, ok := f.Source(e); ok {
			return s, true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		if s, ok := f.Tainted[x.Name]; ok {
			return s, true
		}
	case *ast.SelectorExpr:
		if s, ok := f.Tainted[types.ExprString(x)]; ok {
			return s, true
		}
		// A field of a tainted struct aliases whatever the struct does.
		return f.SourceKey(x.X)
	case *ast.SliceExpr:
		return f.SourceKey(x.X)
	case *ast.IndexExpr:
		return f.SourceKey(x.X)
	case *ast.StarExpr:
		return f.SourceKey(x.X)
	case *ast.TypeAssertExpr:
		return f.SourceKey(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return f.SourceKey(x.X)
		}
	case *ast.BinaryExpr:
		// Arithmetic on a tainted scalar stays tainted (leader := (r/n)*n).
		if s, ok := f.SourceKey(x.X); ok {
			return s, true
		}
		return f.SourceKey(x.Y)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if s, ok := f.SourceKey(elt); ok {
				return s, true
			}
		}
	case *ast.CallExpr:
		// append's result can alias its first argument's backing array;
		// later arguments are copied by value and do not propagate.
		if builtinNameOf(f.Info, x) == "append" && len(x.Args) > 0 {
			return f.SourceKey(x.Args[0])
		}
	}
	return "", false
}

// Propagate runs the assignment fixpoint over root, growing Tainted until
// nothing new derives.
func (f *Flow) Propagate(root ast.Node) {
	for {
		changed := false
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						changed = f.edge(n.Lhs[i], n.Rhs[i]) || changed
					}
				} else if len(n.Rhs) == 1 {
					// v, ok := x.(T) / m[k] / <-ch: the value lands first.
					changed = f.edge(n.Lhs[0], n.Rhs[0]) || changed
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						changed = f.edge(n.Names[i], n.Values[i]) || changed
					}
				} else if len(n.Values) == 1 && len(n.Names) > 0 {
					changed = f.edge(n.Names[0], n.Values[0]) || changed
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					changed = f.edge(n.Value, n.X) || changed
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// edge records lhs as tainted when rhs is; reports whether the map grew.
func (f *Flow) edge(lhs, rhs ast.Expr) bool {
	key, ok := f.Key(lhs)
	if !ok {
		return false
	}
	if _, seen := f.Tainted[key]; seen {
		return false
	}
	src, ok := f.SourceKey(rhs)
	if !ok {
		return false
	}
	if f.Narrow != nil && !f.Narrow(lhs) {
		return false
	}
	f.Tainted[key] = src
	return true
}

// builtinNameOf returns the builtin a call invokes, or "".
func builtinNameOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
