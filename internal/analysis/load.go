package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked analysis unit: a package's compiled files, or
// the package augmented with its in-package test files, or an external _test
// package. Analyzers see exactly one unit per Pass.
type Package struct {
	// Path is the unit's import path; external test units carry a "_test"
	// suffix.
	Path string
	// Dir is the directory the unit's files live in.
	Dir string
	// Files are the unit's parsed files, with comments.
	Files []*ast.File
	// Types and Info are the typechecking results.
	Types *types.Package
	Info  *types.Info
}

// Root maps an import-path prefix to the directory that holds its source,
// the way a GOPATH entry or a module root does. A Root with Prefix "" serves
// any path (used by analysistest's testdata/src trees).
type Root struct {
	Prefix string
	Dir    string
}

// Loader typechecks packages from source using only the standard library: a
// replacement for go/packages that resolves the repo's own import paths via
// Roots and everything else (the standard library, including its vendored
// dependencies) via go/build. Dependencies are typechecked with function
// bodies ignored; only the units requested through Load get full checking.
//
// A Loader caches dependency packages, so loading every package of the
// module shares one typechecked standard library.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet
	// Roots resolve non-stdlib import paths, first match wins.
	Roots []Root

	ctxt    build.Context
	deps    map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a loader resolving import paths through roots.
func NewLoader(roots []Root) *Loader {
	ctxt := build.Default
	// Cgo files would inject the pseudo-package "C"; with cgo off, go/build
	// selects the pure-Go fallbacks (e.g. the netgo resolver), which is all
	// source-level analysis needs.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		Roots:   roots,
		ctxt:    ctxt,
		deps:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// rootDir returns the directory for path if a Root covers it.
func (l *Loader) rootDir(path string) (string, bool) {
	for _, r := range l.Roots {
		switch {
		case r.Prefix == "":
			dir := filepath.Join(r.Dir, filepath.FromSlash(path))
			if isDir(dir) {
				return dir, true
			}
		case path == r.Prefix:
			return r.Dir, true
		case strings.HasPrefix(path, r.Prefix+"/"):
			return filepath.Join(r.Dir, filepath.FromSlash(strings.TrimPrefix(path, r.Prefix+"/"))), true
		}
	}
	return "", false
}

func isDir(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: it typechecks the dependency
// package at `path` (bodies ignored), resolving vendored stdlib imports
// relative to srcDir exactly as the go tool does.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.rootDir(path)
	var files []string
	var resolved string // canonical path (vendored imports resolve to a longer one)
	if ok {
		bp, err := l.ctxt.ImportDir(dir, 0)
		if err != nil {
			return nil, fmt.Errorf("import %q: %w", path, err)
		}
		files, resolved = absolve(bp.Dir, bp.GoFiles), path
	} else {
		bp, err := l.ctxt.Import(path, srcDir, 0)
		if err != nil {
			return nil, fmt.Errorf("import %q from %q: %w", path, srcDir, err)
		}
		if pkg, ok := l.deps[bp.ImportPath]; ok {
			l.deps[path] = pkg
			return pkg, nil
		}
		files, resolved = absolve(bp.Dir, bp.GoFiles), bp.ImportPath
	}

	parsed, err := l.parse(files, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		// The standard library legitimately uses compiler intrinsics and
		// build-tag tricks; soft errors in dependencies must not block
		// analysis of the unit under check.
		Error: func(error) {},
	}
	pkg, err := conf.Check(resolved, l.Fset, parsed, nil)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("typecheck %q: %w", path, err)
	}
	pkg.MarkComplete()
	l.deps[resolved] = pkg
	l.deps[path] = pkg
	return pkg, nil
}

// absolve joins names onto dir.
func absolve(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func (l *Loader) parse(files []string, mode parser.Mode) ([]*ast.File, error) {
	sort.Strings(files)
	parsed := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, mode)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	return parsed, nil
}

// LoadDir typechecks the package in dir as up to two full analysis units:
// the package itself (augmented with its in-package _test files when
// includeTests is set) and, when present and requested, the external _test
// package. Directories containing no buildable Go files yield no units and
// no error.
func (l *Loader) LoadDir(dir, importPath string, includeTests bool) ([]*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("load %s: %w", dir, err)
	}
	var units []*Package
	main := absolve(bp.Dir, bp.GoFiles)
	if includeTests {
		main = append(main, absolve(bp.Dir, bp.TestGoFiles)...)
	}
	if len(main) > 0 {
		u, err := l.check(importPath, dir, main)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if includeTests && len(bp.XTestGoFiles) > 0 {
		u, err := l.check(importPath+"_test", dir, absolve(bp.Dir, bp.XTestGoFiles))
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// check fully typechecks one unit.
func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	parsed, err := l.parse(files, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(importPath, l.Fset, parsed, info)
	if firstErr != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, firstErr)
	}
	return &Package{Path: importPath, Dir: dir, Files: parsed, Types: pkg, Info: info}, nil
}
