// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// typechecked package through a Pass and reports Diagnostics.
//
// The repo's correctness rests on invariants the compiler cannot see —
// collective tags must be unique per concurrent operation, simulation
// results must be bit-reproducible, blocking sends must not happen under a
// held lock, tensors must not leak their backing arrays. The analyzers under
// this package (rawtag, determinism, locksend, sliceret) encode those
// invariants; cmd/embracevet is the multichecker driver that runs them all,
// and `make lint` wires them into the build.
//
// Suppression: a finding can be silenced with a justification comment on the
// offending line (or the line directly above it):
//
//	//embrace:allow <analyzer> <justification>
//
// A directive without a justification is itself reported. DESIGN.md §
// "Static analysis" documents each analyzer and the invariant it guards.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //embrace:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects a package via pass and reports findings through
	// pass.Reportf. The returned value is ignored by the driver (kept for
	// x/tools API parity).
	Run func(pass *Pass) (any, error)
	// Summarize, when set, is called once per unit of the whole program
	// before any Run, so the analyzer can export per-function facts into
	// pass.Program. Reporting from Summarize is a no-op: facts are the only
	// legitimate output of the phase.
	Summarize func(pass *Pass)
	// Finish, when set, runs once after every unit has been summarized —
	// the place for program-wide fixpoints (taint propagation through the
	// call graph, transitive summaries) before per-unit Run begins.
	Finish func(prog *Program)
}

// Pass connects an Analyzer to the single package unit being checked.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file of the unit.
	Fset *token.FileSet
	// Files are the parsed files of the unit, comments included.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo holds the resolution tables (Uses, Defs, Types, ...).
	TypesInfo *types.Info
	// Program is the whole-program view (call graph and exported facts)
	// when the pass runs under a Runner; nil for bare single-unit passes.
	Program *Program
	// report receives each finding; installed by the checker.
	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Suppressed marks a finding silenced by a justified //embrace:allow
	// directive. The checker returns suppressed findings (so drivers can
	// surface them in audits, e.g. -json) but they do not fail a run.
	Suppressed bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Inspect walks every file of the pass in source order, calling f on each
// node exactly as ast.Inspect does.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// CalleeFunc resolves the *types.Func a call expression invokes, through
// parentheses and method selectors. It returns nil for calls through
// function-typed variables, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}

// PkgPathOf returns the import path of the package a function belongs to, or
// "" for builtins.
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// ReceiverType returns the named type of fn's receiver (dereferencing one
// pointer), or nil for package-level functions.
func ReceiverType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
