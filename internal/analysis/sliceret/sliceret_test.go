package sliceret_test

import (
	"testing"

	"embrace/internal/analysis/analysistest"
	"embrace/internal/analysis/sliceret"
)

func TestSliceRet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sliceret.Analyzer, "embrace/internal/tensor")
}
