// Package tensor is a fixture standing in for the real tensor package: the
// analyzer must force exported accessors that hand out backing storage to
// declare it.
package tensor

// Dense is a row-major matrix.
type Dense struct {
	shape []int
	data  []float64
}

// Data returns the backing storage. Undocumented alias: flagged.
func (t *Dense) Data() []float64 {
	return t.data // want `Data returns internal backing slice t\.data without a copy`
}

// Row returns one row of the matrix. Reslicing a field is still an alias.
func (t *Dense) Row(i int) []float64 {
	n := t.shape[1]
	return t.data[i*n : (i+1)*n] // want `Row returns internal backing slice t\.data without a copy`
}

// RawShape returns the shape slice.
//
// aliases: the returned slice is the tensor's own shape; callers must not
// mutate it.
func (t *Dense) RawShape() []int {
	return t.shape
}

// ShapeCopy returns a fresh copy of the shape; no contract needed.
func (t *Dense) ShapeCopy() []int {
	return append([]int(nil), t.shape...)
}

// Zeros builds fresh storage; returning a local is no alias.
func Zeros(n int) []float64 {
	buf := make([]float64, n)
	return buf
}

// Len returns a scalar; non-slice results are never flagged.
func (t *Dense) Len() int {
	return len(t.data)
}

// view is unexported: internal helpers may alias freely.
func (t *Dense) view() []float64 {
	return t.data
}

// Justified keeps the suppression mechanism honest for this analyzer too.
func (t *Dense) Justified() []float64 {
	//embrace:allow sliceret fixture exercises the directive path
	return t.data
}
