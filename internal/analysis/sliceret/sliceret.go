// Package sliceret polices aliasing contracts on internal/tensor's exported
// API.
//
// Tensor accessors that hand out internal backing storage are a real
// performance feature — zero-copy row views are what make sparse gather
// cheap — but an undocumented alias is how "mutate the result of Row and
// corrupt the tensor" bugs are born. This analyzer flags exported functions
// and methods in internal/tensor that return a slice aliasing an internal
// field (a field selector like t.data, or a slice expression over one like
// s.Vals[a:b]) unless the declaration's doc comment carries an explicit
// `aliases:` contract telling callers the memory is shared. Returning a
// fresh copy needs no contract.
package sliceret

import (
	"go/ast"
	"go/types"
	"strings"

	"embrace/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sliceret",
	Doc:  "require an `aliases:` doc contract on exported tensor functions returning internal backing slices",
	Run:  run,
}

// covered reports whether the unit is internal/tensor (including its
// in-package tests).
func covered(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/tensor" || strings.HasSuffix(path, "/internal/tensor")
}

func run(pass *analysis.Pass) (any, error) {
	if !covered(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if hasContract(fd.Doc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// hasContract reports whether the doc comment documents aliasing.
func hasContract(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(doc.Text(), "aliases:")
}

// checkFunc flags returns in fd's body (excluding nested function literals,
// which are not part of the exported surface) that alias a field.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if field, ok := aliasedField(pass, res); ok {
				pass.Reportf(res.Pos(),
					"%s returns internal backing slice %s without a copy: document the sharing with an `aliases:` doc contract or return a copy",
					fd.Name.Name, field)
			}
		}
		return true
	})
}

// aliasedField reports whether expr evaluates to a slice that shares memory
// with a struct field: the field itself (t.data) or a reslicing of one
// (s.Vals[a:b]). Anything routed through append/make/copy produces fresh
// storage and is not matched.
func aliasedField(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	e := ast.Unparen(expr)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	if _, ok := s.Type().Underlying().(*types.Slice); !ok {
		return "", false
	}
	return types.ExprString(sel), true
}
