package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile computes the quantile the histogram approximates: the value
// at 1-based rank ceil(q*n) of the sorted sample.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	vals := []float64{0.001, 0.002, 0.003, 0.010, 0.100}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("sum = %g want %g", h.Sum(), sum)
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Fatalf("min = %g", got)
	}
	if got := h.Quantile(1); got != 0.100 {
		t.Fatalf("max = %g", got)
	}
}

func TestHistogramQuantileError(t *testing.T) {
	// Bucket-resolution quantiles must stay within one growth factor of the
	// exact sample quantile (below it, since the estimate is a bucket lower
	// bound clamped to the observed range).
	h := NewHistogram()
	var vals []float64
	v := 1e-6
	for i := 0; i < 500; i++ {
		h.Observe(v)
		vals = append(vals, v)
		v *= 1.031 // spread across many buckets up to ~4s
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		exact := exactQuantile(vals, q)
		got := h.Quantile(q)
		if got > exact || got < exact/(histGrowth*histGrowth) {
			t.Fatalf("q=%g: got %g, exact %g (allowed [%g, %g])",
				q, got, exact, exact/(histGrowth*histGrowth), exact)
		}
	}
}

func TestHistogramMergeExact(t *testing.T) {
	a, b, ref := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		v := float64(i+1) * 1e-4
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		ref.Observe(v)
	}
	m := MergeHistograms(a, b)
	if m.Count() != ref.Count() || math.Abs(m.Sum()-ref.Sum()) > 1e-12 {
		t.Fatalf("merged count/sum %d/%g want %d/%g", m.Count(), m.Sum(), ref.Count(), ref.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if m.Quantile(q) != ref.Quantile(q) {
			t.Fatalf("q=%g: merged %g != pooled %g", q, m.Quantile(q), ref.Quantile(q))
		}
	}
	// Merging must not mutate the source.
	if b.Count() != 50 {
		t.Fatalf("source histogram mutated: count %d", b.Count())
	}
	// Nil handling.
	if MergeHistograms(nil, nil) != nil {
		t.Fatal("nil+nil must stay nil")
	}
	if got := MergeHistograms(nil, a); got.Count() != a.Count() {
		t.Fatal("nil+a must clone a")
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Merge(NewHistogram())
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Clone() != nil {
		t.Fatal("nil histogram must be inert")
	}
	if s := h.Summary(); s.Count != 0 {
		t.Fatal("nil summary must be zero")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * time.Millisecond.Seconds())
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 0.001 || s.Max != 0.1 {
		t.Fatalf("summary %+v", s)
	}
	if s.P50 <= 0 || s.P50 > 0.05 || s.P99 <= s.P50 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string render")
	}
}

func TestOpRecorderBlockedPercentiles(t *testing.T) {
	r := NewOpRecorder()
	for i := 1; i <= 50; i++ {
		r.Received("op", nil, time.Duration(i)*time.Millisecond)
		r.Sent("op", nil, time.Millisecond)
	}
	per := r.PerOp()
	s := per["op"]
	if s.RecvBlocked == nil || s.RecvBlocked.Count() != 50 {
		t.Fatalf("recv histogram missing: %+v", s.RecvBlocked)
	}
	if s.SendBlocked.Count() != 50 {
		t.Fatal("send histogram missing")
	}
	p99 := s.RecvBlocked.Quantile(0.99)
	p50 := s.RecvBlocked.Quantile(0.50)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("p50=%g p99=%g", p50, p99)
	}
	// The snapshot is detached: further recording must not change it.
	before := s.RecvBlocked.Count()
	r.Received("op", nil, time.Millisecond)
	if s.RecvBlocked.Count() != before {
		t.Fatal("PerOp snapshot aliases live histogram")
	}
	// Add merges distributions across recorders (the cross-rank fold).
	r2 := NewOpRecorder()
	r2.Received("op", nil, 100*time.Millisecond)
	sum := per["op"].Add(r2.PerOp()["op"])
	if sum.RecvBlocked.Count() != 51 {
		t.Fatalf("merged recv count %d", sum.RecvBlocked.Count())
	}
	if sum.RecvBlocked.Quantile(1) < 0.1 {
		t.Fatalf("merged max %g lost the 100ms tail", sum.RecvBlocked.Quantile(1))
	}
}

func TestCacheCounters(t *testing.T) {
	var c CacheCounters
	c.Hit()
	c.Hit()
	c.Miss()
	c.Evict()
	s := c.Snapshot()
	if s.Hits != 2 || s.Misses != 1 || s.Evictions != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if got := s.HitRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("hit rate %g", got)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("empty hit rate must be 0")
	}
}
