package metrics

import (
	"testing"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/nn"
	"embrace/internal/tensor"
)

func TestPayloadSize(t *testing.T) {
	d := tensor.NewDense(3, 2)
	s, _ := tensor.NewSparse(10, 2, []int64{1, 2}, make([]float32, 4))
	cases := []struct {
		payload any
		want    int64
	}{
		{[]float32{1, 2, 3}, 12},
		{d, 24},
		{s, 2*8 + 4*4},
		{[]*tensor.Dense{d, d}, 48},
		{[]*tensor.Sparse{s}, 2*8 + 4*4},
		{[]int64{1, 2}, 16},
		{[][]int64{{1}, {2, 3}}, 24},
		{nn.StepStats{}, 24},
		{"control", 0},
		{42, 0},
	}
	for i, c := range cases {
		if got := PayloadSize(c.payload); got != c.want {
			t.Errorf("case %d: PayloadSize = %d, want %d", i, got, c.want)
		}
	}
}

func TestTransportCountsTraffic(t *testing.T) {
	w, err := comm.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	m0 := Wrap(w.Rank(0))
	m1 := Wrap(w.Rank(1))
	if m0.Rank() != 0 || m0.Size() != 2 {
		t.Fatal("wrapper must forward rank/size")
	}
	go func() {
		_ = m0.Send(1, 1, []float32{1, 2, 3, 4})
		_ = m0.Send(1, 1, []float32{5})
	}()
	for i := 0; i < 2; i++ {
		if _, err := m1.Recv(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := m0.Stats()
	if st.Messages != 2 {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.PayloadBytes != 20 {
		t.Fatalf("payload = %d", st.PayloadBytes)
	}
	if m1.Stats().RecvSeconds <= 0 {
		t.Fatal("recv time not recorded")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SendSeconds: 1, RecvSeconds: 2, Messages: 3, PayloadBytes: 4}
	b := Stats{SendSeconds: 10, RecvSeconds: 20, Messages: 30, PayloadBytes: 40}
	sum := a.Add(b)
	if sum.SendSeconds != 11 || sum.RecvSeconds != 22 || sum.Messages != 33 || sum.PayloadBytes != 44 {
		t.Fatalf("sum = %+v", sum)
	}
}

func TestCollectivesThroughWrappedTransport(t *testing.T) {
	// The wrapper must be drop-in for real collectives, and the measured
	// traffic of a ring allreduce must match its 2(N-1)/N * M law.
	const n, m = 4, 1000
	totals := make([]int64, n)
	err := comm.RunRanks(n, func(raw comm.Transport) error {
		tr := Wrap(raw)
		buf := make([]float32, m)
		if err := collective.NewCommunicator(tr).AllReduce("test/allreduce", 0, buf); err != nil {
			return err
		}
		totals[tr.Rank()] = tr.Stats().PayloadBytes
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each rank sends 2(N-1) chunks of ~M/N elements.
	want := int64(2 * (n - 1) * (m / n) * tensor.BytesPerElem)
	for r, got := range totals {
		if got < want*9/10 || got > want*11/10 {
			t.Fatalf("rank %d sent %d bytes, want ~%d", r, got, want)
		}
	}
}

func TestOpRecorderAttributesTrafficPerOp(t *testing.T) {
	// OpRecorder must satisfy collective.Observer structurally.
	var _ collective.Observer = NewOpRecorder()

	const n, m = 4, 1000
	recs := make([]*OpRecorder, n)
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		rec := NewOpRecorder()
		recs[tr.Rank()] = rec
		c := collective.NewCommunicator(tr, collective.WithObserver(rec))
		if err := c.AllReduce("dense/w1", 0, make([]float32, m)); err != nil {
			return err
		}
		s, err := tensor.NewSparse(8, 2, []int64{1}, make([]float32, 2))
		if err != nil {
			return err
		}
		_, err = c.SparseAllGather("emb/grad", 0, s)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rec := range recs {
		per := rec.PerOp()
		if len(per) != 2 {
			t.Fatalf("rank %d recorded ops %v, want 2", r, per)
		}
		dense := per["dense/w1"]
		// Ring allreduce: 2(N-1) sends of ~M/N elements per rank.
		wantMsgs := int64(2 * (n - 1))
		if dense.Messages != wantMsgs {
			t.Fatalf("rank %d dense messages = %d, want %d", r, dense.Messages, wantMsgs)
		}
		wantBytes := int64(2 * (n - 1) * (m / n) * tensor.BytesPerElem)
		if dense.PayloadBytes < wantBytes*9/10 || dense.PayloadBytes > wantBytes*11/10 {
			t.Fatalf("rank %d dense bytes = %d, want ~%d", r, dense.PayloadBytes, wantBytes)
		}
		sparse := per["emb/grad"]
		if sparse.Messages != n-1 {
			t.Fatalf("rank %d sparse messages = %d, want %d", r, sparse.Messages, n-1)
		}
		total := rec.Total()
		if total.Messages != dense.Messages+sparse.Messages {
			t.Fatalf("rank %d total messages %d != sum of per-op", r, total.Messages)
		}
		if total.PayloadBytes != dense.PayloadBytes+sparse.PayloadBytes {
			t.Fatalf("rank %d total bytes %d != sum of per-op", r, total.PayloadBytes)
		}
	}
}

func TestOpStatsAdd(t *testing.T) {
	a := OpStats{Messages: 1, PayloadBytes: 2, SendSeconds: 3, RecvSeconds: 4}
	b := OpStats{Messages: 10, PayloadBytes: 20, SendSeconds: 30, RecvSeconds: 40}
	sum := a.Add(b)
	if sum.Messages != 11 || sum.PayloadBytes != 22 || sum.SendSeconds != 33 || sum.RecvSeconds != 44 {
		t.Fatalf("sum = %+v", sum)
	}
}
