// Package metrics instruments a comm.Transport with traffic and blocking
// accounting. Wrapping a rank's transport costs nothing in the strategies —
// they see the same interface — and yields the real-execution counterpart of
// the paper's communication analysis: how many bytes each strategy actually
// moved and how long each rank spent blocked in communication. The
// cross-strategy byte comparisons (EmbRace's AlltoAll traffic vs AllGather's
// N-fold payload) validate the Table-2 cost model with measured data.
package metrics

import (
	"sync/atomic"
	"time"

	"embrace/internal/comm"
	"embrace/internal/nn"
	"embrace/internal/tensor"
)

// Stats is a snapshot of one rank's communication counters.
type Stats struct {
	// SendSeconds and RecvSeconds are wall-clock time spent inside Send
	// and Recv. Recv time is the real-mode analogue of communication
	// stall: the rank had nothing to do but wait.
	SendSeconds, RecvSeconds float64
	// Messages counts Send calls.
	Messages int64
	// PayloadBytes estimates the bytes sent (tensor payloads and token
	// batches; small control values count as zero).
	PayloadBytes int64
}

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SendSeconds:  s.SendSeconds + o.SendSeconds,
		RecvSeconds:  s.RecvSeconds + o.RecvSeconds,
		Messages:     s.Messages + o.Messages,
		PayloadBytes: s.PayloadBytes + o.PayloadBytes,
	}
}

// Transport decorates a comm.Transport with counters. Safe for concurrent
// use, like the transport it wraps.
type Transport struct {
	inner comm.Transport

	sendNS  atomic.Int64
	recvNS  atomic.Int64
	msgs    atomic.Int64
	payload atomic.Int64
}

// Wrap instruments t.
func Wrap(t comm.Transport) *Transport {
	return &Transport{inner: t}
}

// Rank implements comm.Transport.
func (m *Transport) Rank() int { return m.inner.Rank() }

// Size implements comm.Transport.
func (m *Transport) Size() int { return m.inner.Size() }

// Send implements comm.Transport, recording duration and payload size.
func (m *Transport) Send(to, tag int, payload any) error {
	start := time.Now()
	err := m.inner.Send(to, tag, payload)
	m.sendNS.Add(time.Since(start).Nanoseconds())
	m.msgs.Add(1)
	m.payload.Add(PayloadSize(payload))
	return err
}

// Recv implements comm.Transport, recording blocked time.
func (m *Transport) Recv(from, tag int) (any, error) {
	start := time.Now()
	payload, err := m.inner.Recv(from, tag)
	m.recvNS.Add(time.Since(start).Nanoseconds())
	return payload, err
}

// Stats returns the counters accumulated so far.
func (m *Transport) Stats() Stats {
	return Stats{
		SendSeconds:  float64(m.sendNS.Load()) / 1e9,
		RecvSeconds:  float64(m.recvNS.Load()) / 1e9,
		Messages:     m.msgs.Load(),
		PayloadBytes: m.payload.Load(),
	}
}

// PayloadSize estimates the wire size of the payload types the training
// stack sends. Unknown types count as zero (control messages).
func PayloadSize(payload any) int64 {
	switch v := payload.(type) {
	case []float32:
		return int64(len(v) * tensor.BytesPerElem)
	case *tensor.Dense:
		return int64(v.SizeBytes())
	case *tensor.Sparse:
		return int64(v.SizeBytes())
	case []*tensor.Dense:
		var n int64
		for _, d := range v {
			n += int64(d.SizeBytes())
		}
		return n
	case []*tensor.Sparse:
		var n int64
		for _, s := range v {
			n += int64(s.SizeBytes())
		}
		return n
	case []int64:
		return int64(len(v) * 8)
	case [][]int64:
		var n int64
		for _, row := range v {
			n += int64(len(row) * 8)
		}
		return n
	case nn.StepStats:
		return 24
	default:
		return 0
	}
}

// Compile-time check.
var _ comm.Transport = (*Transport)(nil)
