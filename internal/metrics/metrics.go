// Package metrics instruments a comm.Transport with traffic and blocking
// accounting. Wrapping a rank's transport costs nothing in the strategies —
// they see the same interface — and yields the real-execution counterpart of
// the paper's communication analysis: how many bytes each strategy actually
// moved and how long each rank spent blocked in communication. The
// cross-strategy byte comparisons (EmbRace's AlltoAll traffic vs AllGather's
// N-fold payload) validate the Table-2 cost model with measured data.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"

	"embrace/internal/comm"
	"embrace/internal/nn"
	"embrace/internal/tensor"
)

// Stats is a snapshot of one rank's communication counters.
type Stats struct {
	// SendSeconds and RecvSeconds are wall-clock time spent inside Send
	// and Recv. Recv time is the real-mode analogue of communication
	// stall: the rank had nothing to do but wait.
	SendSeconds, RecvSeconds float64
	// Messages counts Send calls.
	Messages int64
	// PayloadBytes estimates the bytes sent (tensor payloads and token
	// batches; small control values count as zero).
	PayloadBytes int64
	// FaultsMasked counts communication faults absorbed by the self-healing
	// layer (duplicates dropped, reordered frames buffered, transient sends
	// retried); FaultsFatal counts faults that surfaced as errors.
	FaultsMasked, FaultsFatal int64
}

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SendSeconds:  s.SendSeconds + o.SendSeconds,
		RecvSeconds:  s.RecvSeconds + o.RecvSeconds,
		Messages:     s.Messages + o.Messages,
		PayloadBytes: s.PayloadBytes + o.PayloadBytes,
		FaultsMasked: s.FaultsMasked + o.FaultsMasked,
		FaultsFatal:  s.FaultsFatal + o.FaultsFatal,
	}
}

// Transport decorates a comm.Transport with counters. Safe for concurrent
// use, like the transport it wraps.
type Transport struct {
	inner comm.Transport

	sendNS  atomic.Int64
	recvNS  atomic.Int64
	msgs    atomic.Int64
	payload atomic.Int64
}

// Wrap instruments t.
func Wrap(t comm.Transport) *Transport {
	return &Transport{inner: t}
}

// Rank implements comm.Transport.
func (m *Transport) Rank() int { return m.inner.Rank() }

// Size implements comm.Transport.
func (m *Transport) Size() int { return m.inner.Size() }

// Send implements comm.Transport, recording duration and payload size.
func (m *Transport) Send(to, tag int, payload any) error {
	start := time.Now()
	err := m.inner.Send(to, tag, payload)
	m.sendNS.Add(time.Since(start).Nanoseconds())
	m.msgs.Add(1)
	m.payload.Add(PayloadSize(payload))
	return err
}

// Recv implements comm.Transport, recording blocked time.
func (m *Transport) Recv(from, tag int) (any, error) {
	start := time.Now()
	payload, err := m.inner.Recv(from, tag)
	m.recvNS.Add(time.Since(start).Nanoseconds())
	return payload, err
}

// Stats returns the counters accumulated so far.
func (m *Transport) Stats() Stats {
	return Stats{
		SendSeconds:  float64(m.sendNS.Load()) / 1e9,
		RecvSeconds:  float64(m.recvNS.Load()) / 1e9,
		Messages:     m.msgs.Load(),
		PayloadBytes: m.payload.Load(),
	}
}

// PayloadSize estimates the wire size of the payload types the training
// stack sends. Unknown types count as zero (control messages).
func PayloadSize(payload any) int64 {
	switch v := payload.(type) {
	case comm.SeqFrame:
		// Sequence envelope added by collective.Communicator: size the
		// payload it carries (the 8-byte counter is framing overhead, like
		// the tag, and deliberately excluded).
		return PayloadSize(v.Payload)
	case []float32:
		return int64(len(v) * tensor.BytesPerElem)
	case *tensor.Dense:
		return int64(v.SizeBytes())
	case *tensor.Sparse:
		return int64(v.SizeBytes())
	case []*tensor.Dense:
		var n int64
		for _, d := range v {
			n += int64(d.SizeBytes())
		}
		return n
	case []*tensor.Sparse:
		var n int64
		for _, s := range v {
			n += int64(s.SizeBytes())
		}
		return n
	case []int64:
		return int64(len(v) * 8)
	case []byte:
		// Encoded sparse-exchange wire payloads: what actually hit the wire.
		return int64(len(v))
	case [][]int64:
		var n int64
		for _, row := range v {
			n += int64(len(row) * 8)
		}
		return n
	case nn.StepStats:
		return 24
	default:
		return 0
	}
}

// Compile-time check.
var _ comm.Transport = (*Transport)(nil)

// OpStats is per-logical-operation traffic: what one rank sent and received
// under a single Communicator op name.
type OpStats struct {
	// Messages counts sends of the op.
	Messages int64
	// PayloadBytes estimates the bytes this rank sent under the op.
	PayloadBytes int64
	// SendSeconds and RecvSeconds are wall-clock time inside Send/Recv for
	// the op; RecvSeconds is the op's communication stall.
	SendSeconds, RecvSeconds float64
	// SendBlocked and RecvBlocked hold the per-message blocked-time
	// distributions behind the totals above, so a report can state p50/p99
	// stall per op instead of only its sum — the tail is what a synchronous
	// step actually waits on. Nil when the op recorded no traffic.
	SendBlocked, RecvBlocked *Histogram
	// FaultsMasked and FaultsFatal count communication faults the op
	// absorbed and surfaced, respectively (see Stats).
	FaultsMasked, FaultsFatal int64
	// RawBytes and WireBytes account the op's sparse wire codec, when one is
	// installed: RawBytes is what the raw index/value streams would have
	// occupied, WireBytes what the encoded payloads actually did (the same
	// bytes PayloadBytes sees). Zero when the op runs uncompressed.
	RawBytes, WireBytes int64
	// EncodeSeconds and DecodeSeconds are wall-clock time inside the codec.
	EncodeSeconds, DecodeSeconds float64
}

// CompressionRatio returns RawBytes/WireBytes — how many times smaller the
// codec made the op's sparse streams. The WireBytes == 0 guard (no codec
// work recorded, or an all-empty exchange whose shards encoded to zero
// bytes) returns the neutral 1 rather than dividing by zero. Ratios below 1
// are real, not clamped: a codec can inflate a tiny payload (header
// overhead on a 1-row shard), and the report should show it.
func (s OpStats) CompressionRatio() float64 {
	if s.WireBytes == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// MaskedBytes returns the bytes the codec kept off the wire, clamped at
// zero: when the codec inflates a payload (DeltaRaw's per-shard header on a
// 1-row shard exceeds the row it frames), the wire carried MORE than raw
// and no bytes were masked — a negative "savings" here would corrupt the
// aggregate totals reports sum it into. The inflation itself stays visible
// as CompressionRatio < 1 and WireBytes > RawBytes.
func (s OpStats) MaskedBytes() int64 {
	if s.WireBytes >= s.RawBytes {
		return 0
	}
	return s.RawBytes - s.WireBytes
}

// Add returns the element-wise sum of two per-op snapshots. Blocked-time
// histograms merge exactly (shared bucket layout), so cross-rank percentiles
// are those of the pooled observations.
func (s OpStats) Add(o OpStats) OpStats {
	return OpStats{
		Messages:      s.Messages + o.Messages,
		PayloadBytes:  s.PayloadBytes + o.PayloadBytes,
		SendSeconds:   s.SendSeconds + o.SendSeconds,
		RecvSeconds:   s.RecvSeconds + o.RecvSeconds,
		SendBlocked:   MergeHistograms(s.SendBlocked, o.SendBlocked),
		RecvBlocked:   MergeHistograms(s.RecvBlocked, o.RecvBlocked),
		FaultsMasked:  s.FaultsMasked + o.FaultsMasked,
		FaultsFatal:   s.FaultsFatal + o.FaultsFatal,
		RawBytes:      s.RawBytes + o.RawBytes,
		WireBytes:     s.WireBytes + o.WireBytes,
		EncodeSeconds: s.EncodeSeconds + o.EncodeSeconds,
		DecodeSeconds: s.DecodeSeconds + o.DecodeSeconds,
	}
}

// OpRecorder aggregates traffic per logical operation name. It satisfies
// collective.Observer structurally, so a Communicator built with
// collective.WithObserver(rec) attributes every byte to the op that moved it
// — the per-op refinement of the transport-level Wrap counters. Safe for
// concurrent use.
type OpRecorder struct {
	mu  sync.Mutex
	ops map[string]*OpStats
}

// NewOpRecorder returns an empty per-op traffic recorder.
func NewOpRecorder() *OpRecorder {
	return &OpRecorder{ops: make(map[string]*OpStats)}
}

func (r *OpRecorder) get(op string) *OpStats {
	s, ok := r.ops[op]
	if !ok {
		s = &OpStats{}
		r.ops[op] = s
	}
	return s
}

// Sent implements collective.Observer.
func (r *OpRecorder) Sent(op string, payload any, blocked time.Duration) {
	size := PayloadSize(payload)
	r.mu.Lock()
	s := r.get(op)
	s.Messages++
	s.PayloadBytes += size
	s.SendSeconds += blocked.Seconds()
	if s.SendBlocked == nil {
		s.SendBlocked = NewHistogram()
	}
	s.SendBlocked.Observe(blocked.Seconds())
	r.mu.Unlock()
}

// Received implements collective.Observer.
func (r *OpRecorder) Received(op string, payload any, blocked time.Duration) {
	r.mu.Lock()
	s := r.get(op)
	s.RecvSeconds += blocked.Seconds()
	if s.RecvBlocked == nil {
		s.RecvBlocked = NewHistogram()
	}
	s.RecvBlocked.Observe(blocked.Seconds())
	r.mu.Unlock()
}

// CodecOp implements collective.CodecObserver: one encoded or decoded peer
// shard of op, with its uncompressed footprint, wire length and codec
// latency. Raw/wire bytes are counted on the encode side only (both ends of
// a link would otherwise double-count the same payload); decode contributes
// its latency.
func (r *OpRecorder) CodecOp(op, phase string, rawBytes, wireBytes int, d time.Duration) {
	r.mu.Lock()
	s := r.get(op)
	switch phase {
	case "encode":
		s.RawBytes += int64(rawBytes)
		s.WireBytes += int64(wireBytes)
		s.EncodeSeconds += d.Seconds()
	case "decode":
		s.DecodeSeconds += d.Seconds()
	}
	r.mu.Unlock()
}

// Fault implements collective.FaultObserver: kind is the fault class
// ("duplicate", "reorder", "transient", ...) and masked reports whether the
// Communicator absorbed it or surfaced an error.
func (r *OpRecorder) Fault(op string, kind string, masked bool) {
	r.mu.Lock()
	s := r.get(op)
	if masked {
		s.FaultsMasked++
	} else {
		s.FaultsFatal++
	}
	r.mu.Unlock()
}

// PerOp returns a copy of the per-op counters accumulated so far. The
// blocked-time histograms are deep-copied, so the snapshot is immune to
// further recording.
func (r *OpRecorder) PerOp() map[string]OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]OpStats, len(r.ops))
	for op, s := range r.ops {
		c := *s
		c.SendBlocked = s.SendBlocked.Clone()
		c.RecvBlocked = s.RecvBlocked.Clone()
		out[op] = c
	}
	return out
}

// Total folds the per-op counters into one transport-level snapshot,
// comparable with Wrap's Stats.
func (r *OpRecorder) Total() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t Stats
	for _, s := range r.ops {
		t.Messages += s.Messages
		t.PayloadBytes += s.PayloadBytes
		t.SendSeconds += s.SendSeconds
		t.RecvSeconds += s.RecvSeconds
		t.FaultsMasked += s.FaultsMasked
		t.FaultsFatal += s.FaultsFatal
	}
	return t
}
