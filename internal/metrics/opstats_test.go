package metrics

import "testing"

// MaskedBytes clamps at zero: a codec that inflates a payload (per-shard
// header overhead on a 1-row shard) kept nothing off the wire, and a
// negative "savings" summed into an aggregate would silently shrink the
// totals of the ops that genuinely compressed.
func TestMaskedBytesClampsInflation(t *testing.T) {
	cases := []struct {
		name      string
		raw, wire int64
		want      int64
	}{
		{"deflating codec", 1000, 250, 750},
		{"identity codec", 500, 500, 0},
		{"inflating codec", 40, 64, 0}, // header > payload: clamp, not -24
		{"no codec installed", 0, 0, 0},
		{"empty exchange", 0, 12, 0}, // header-only frames on empty shards
	}
	for _, tc := range cases {
		s := OpStats{RawBytes: tc.raw, WireBytes: tc.wire}
		if got := s.MaskedBytes(); got != tc.want {
			t.Errorf("%s: MaskedBytes() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// The clamp must not hide the inflation: the ratio still reports it as < 1.
func TestCompressionRatio(t *testing.T) {
	cases := []struct {
		name      string
		raw, wire int64
		want      float64
	}{
		{"deflating codec", 1000, 250, 4},
		{"inflating codec", 40, 64, 0.625},
		{"no codec installed", 0, 0, 1},     // zero-wire guard: neutral, not NaN
		{"all-empty exchange", 100, 0, 1},   // nothing hit the wire: neutral, not +Inf
		{"identity codec", 500, 500, 1},
	}
	for _, tc := range cases {
		s := OpStats{RawBytes: tc.raw, WireBytes: tc.wire}
		if got := s.CompressionRatio(); got != tc.want {
			t.Errorf("%s: CompressionRatio() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Aggregation order must not matter: summing clamped per-rank MaskedBytes
// is what reports do, and the per-op Add that feeds them keeps raw/wire
// intact so the aggregate clamp is applied to true totals.
func TestMaskedBytesSurvivesAdd(t *testing.T) {
	a := OpStats{RawBytes: 100, WireBytes: 160} // inflated on this rank
	b := OpStats{RawBytes: 1000, WireBytes: 200}
	sum := a.Add(b)
	if got := sum.MaskedBytes(); got != 740 {
		t.Fatalf("aggregate MaskedBytes() = %d, want 740 (1100 raw - 360 wire)", got)
	}
	if got := a.MaskedBytes() + b.MaskedBytes(); got != 800 {
		t.Fatalf("per-rank clamped sum = %d, want 800", got)
	}
}
