package metrics

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram accumulates a distribution of non-negative durations (seconds)
// in logarithmically spaced buckets, the standard trick for latency
// percentiles: constant memory, O(1) observation, and quantiles with a
// bounded relative error (one bucket's growth factor) instead of the
// unbounded memory an exact-sample reservoir needs. Two histograms with the
// same (implicit, package-wide) bucket layout merge exactly by summing
// bucket counts, which is what lets per-rank distributions fold into a
// cluster-wide one without losing percentile fidelity.
//
// The zero value is NOT ready to use; call NewHistogram. All methods are
// safe for concurrent use and safe on a nil receiver (observations are
// dropped, queries return zeros), so callers need no "is recording on?"
// branches.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Bucket layout: bucket i spans [histBase*histGrowth^i, histBase*histGrowth^(i+1)).
// Observations below histBase land in bucket 0, above the top in the last
// bucket. With base 100ns and 10% growth, 224 buckets reach past 200 s —
// every latency a serving or training path can plausibly produce — with a
// worst-case quantile error of one growth step.
const (
	histBase    = 100e-9
	histGrowth  = 1.1
	histBuckets = 224
)

// logGrowth is precomputed for bucketOf.
var logGrowth = math.Log(histGrowth)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// bucketOf maps a value in seconds to its bucket index.
func bucketOf(v float64) int {
	if v <= histBase {
		return 0
	}
	b := int(math.Log(v/histBase) / logGrowth)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket b in seconds.
func bucketLow(b int) float64 {
	if b <= 0 {
		return 0
	}
	return histBase * math.Pow(histGrowth, float64(b))
}

// Observe records one value in seconds. Negative values clamp to zero.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	b := bucketOf(seconds)
	h.mu.Lock()
	h.counts[b]++
	h.count++
	h.sum += seconds
	if seconds < h.min {
		h.min = seconds
	}
	if seconds > h.max {
		h.max = seconds
	}
	h.mu.Unlock()
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) in seconds.
// The estimate is the lower bound of the bucket holding the q-th observation,
// clamped to the exact observed min/max, so the relative error is bounded by
// the bucket growth factor. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the target observation, 1-based.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b]
		if cum >= rank {
			v := bucketLow(b)
			// Clamp into the observed range: buckets are coarser than the
			// data, and the true quantile can never leave [min, max].
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds o's observations into h. Exact: both histograms share the
// package-wide bucket layout, so merged quantiles equal those of a histogram
// that observed the union. A nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	// Snapshot o first so the two locks are never held together.
	snap := o.Clone()
	h.mu.Lock()
	for b, c := range snap.counts {
		h.counts[b] += c
	}
	h.count += snap.count
	h.sum += snap.sum
	if snap.count > 0 {
		if snap.min < h.min {
			h.min = snap.min
		}
		if snap.max > h.max {
			h.max = snap.max
		}
	}
	h.mu.Unlock()
}

// Clone returns an independent copy. A nil receiver yields nil.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &Histogram{count: h.count, sum: h.sum, min: h.min, max: h.max}
	c.counts = h.counts
	return c
}

// MergeHistograms returns a new histogram holding a's and b's observations.
// Either may be nil; two nils yield nil, so zero-cost paths stay zero-cost.
func MergeHistograms(a, b *Histogram) *Histogram {
	if a == nil {
		return b.Clone()
	}
	out := a.Clone()
	out.Merge(b)
	return out
}

// Summary is a point-in-time digest of a histogram: the fields dashboards
// and benchmark tables want, detached from the live (locked) histogram.
type Summary struct {
	// Count is the number of observations; Sum their total in seconds.
	Count int64
	Sum   float64
	// Min and Max are the exact observed extremes in seconds.
	Min, Max float64
	// P50, P95 and P99 are bucket-resolution quantile estimates in seconds.
	P50, P95, P99 float64
}

// Summary digests the histogram. Zero-valued with no observations.
func (h *Histogram) Summary() Summary {
	if h == nil || h.Count() == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Quantile(0),
		Max:   h.Quantile(1),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the digest compactly for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s max=%s",
		s.Count, secs(s.P50), secs(s.P95), secs(s.P99), secs(s.Max))
}

// secs formats a second count as a duration.
func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// CacheCounters tracks a cache's hit/miss/eviction counts. Methods are
// atomic, so a cache on a hot path pays one atomic add per event; Snapshot
// is consistent enough for reporting (the three loads are not mutually
// atomic, which reporting never needs).
type CacheCounters struct {
	hits, misses, evictions atomic.Int64
}

// Hit records a cache hit.
func (c *CacheCounters) Hit() { c.hits.Add(1) }

// Miss records a cache miss.
func (c *CacheCounters) Miss() { c.misses.Add(1) }

// Evict records an eviction.
func (c *CacheCounters) Evict() { c.evictions.Add(1) }

// Snapshot returns the current counts.
func (c *CacheCounters) Snapshot() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// CacheStats is a point-in-time copy of cache counters.
type CacheStats struct {
	Hits, Misses, Evictions int64
}

// HitRate returns hits over lookups, or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
