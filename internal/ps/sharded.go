package ps

import (
	"fmt"
	"sync"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

// ShardedSparse is the row-sharded variant of Sparse: rows are assigned to S
// independent server shards by `row % S` (hashing spreads the Zipf head, cf.
// internal/partition), each shard with its own lock, pending list and
// optimizer — so pushes against different shards proceed concurrently, as
// Parallax's partitioned parameter servers do. Aggregation semantics are
// identical to Sparse (synchronous rounds, gradient sums); the equivalence
// is tested.
type ShardedSparse struct {
	vocab, dim int
	shards     []*sparseShard
}

// sparseShard owns the rows r with r % S == index.
type sparseShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	table   *tensor.Dense // [vocab x dim]; only this shard's rows are live
	opt     optim.Optimizer
	workers int

	round   int
	pending []*tensor.Sparse
	err     error
}

// NewShardedSparse creates S server shards over a [vocab x dim] embedding.
// The authoritative parameter values are copied out of `table` into each
// shard; optFor builds one optimizer per shard (bound to that shard's
// table copy), so optimizer state is sharded exactly like the parameters.
func NewShardedSparse(table *tensor.Dense, optFor func(*tensor.Dense) optim.Optimizer, workers, servers int) (*ShardedSparse, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("ps: workers must be positive, got %d", workers)
	}
	if servers <= 0 {
		return nil, fmt.Errorf("ps: servers must be positive, got %d", servers)
	}
	if table.Dims() != 2 {
		return nil, fmt.Errorf("ps: sharded server wants a 2-D table, got %v", table.Shape())
	}
	s := &ShardedSparse{
		vocab:  table.Dim(0),
		dim:    table.Dim(1),
		shards: make([]*sparseShard, servers),
	}
	for i := range s.shards {
		sh := &sparseShard{
			table:   table.Clone(),
			opt:     nil,
			workers: workers,
		}
		sh.opt = optFor(sh.table)
		sh.cond = sync.NewCond(&sh.mu)
		s.shards[i] = sh
	}
	return s, nil
}

// Servers returns the shard count S.
func (s *ShardedSparse) Servers() int { return len(s.shards) }

// shardOf maps a row to its owning shard.
func (s *ShardedSparse) shardOf(row int64) int { return int(row) % len(s.shards) }

// PushAndWait splits the gradient by owning shard, pushes each part, and
// blocks until every shard has applied its round (all workers contributed).
// Rows this worker has no gradient for still require an (empty) push so the
// shard's round can complete — every worker pushes to every shard each
// round, like Parallax clients do.
func (s *ShardedSparse) PushAndWait(grad *tensor.Sparse) error {
	if grad.NumRows != s.vocab || grad.Dim != s.dim {
		return fmt.Errorf("ps: gradient [%d x %d] incompatible with table [%d x %d]",
			grad.NumRows, grad.Dim, s.vocab, s.dim)
	}
	parts := make([][]int, len(s.shards)) // stored-row indices per shard
	for i, ix := range grad.Indices {
		sh := s.shardOf(ix)
		parts[sh] = append(parts[sh], i)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for shard := range s.shards {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			idx := make([]int64, 0, len(parts[shard]))
			vals := make([]float32, 0, len(parts[shard])*s.dim)
			for _, i := range parts[shard] {
				idx = append(idx, grad.Indices[i])
				vals = append(vals, grad.Row(i)...)
			}
			part, err := tensor.NewSparse(s.vocab, s.dim, idx, vals)
			if err != nil {
				errs[shard] = err
				return
			}
			errs[shard] = s.shards[shard].pushAndWait(part)
		}(shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (sh *sparseShard) pushAndWait(part *tensor.Sparse) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return sh.err
	}
	myRound := sh.round
	sh.pending = append(sh.pending, part)
	if len(sh.pending) == sh.workers {
		// Apply even when the round's gradient is empty: Adam's step
		// counter must advance once per round on every shard, matching a
		// monolithic server's single update.
		merged, err := tensor.Concat(sh.pending...)
		if err == nil {
			err = sh.opt.StepSparse(merged)
		}
		if err != nil {
			sh.err = fmt.Errorf("ps: shard update: %w", err)
		}
		sh.pending = nil
		sh.round++
		sh.cond.Broadcast()
		return sh.err
	}
	for sh.round == myRound && sh.err == nil {
		sh.cond.Wait()
	}
	return sh.err
}

// PullRows returns current values of the requested rows, reading each from
// its owning shard.
func (s *ShardedSparse) PullRows(rows []int64) (*tensor.Sparse, error) {
	vals := make([]float32, len(rows)*s.dim)
	for i, r := range rows {
		if r < 0 || r >= int64(s.vocab) {
			return nil, fmt.Errorf("ps: pull row %d out of range [0,%d)", r, s.vocab)
		}
		sh := s.shards[s.shardOf(r)]
		sh.mu.Lock()
		copy(vals[i*s.dim:(i+1)*s.dim], sh.table.Row(int(r)))
		sh.mu.Unlock()
	}
	return tensor.NewSparse(s.vocab, s.dim, append([]int64(nil), rows...), vals)
}

// PullAll assembles the authoritative table from the shards.
func (s *ShardedSparse) PullAll(dst *tensor.Dense) error {
	if dst.Dims() != 2 || dst.Dim(0) != s.vocab || dst.Dim(1) != s.dim {
		return fmt.Errorf("ps: pull into %v, server has [%d x %d]", dst.Shape(), s.vocab, s.dim)
	}
	for r := 0; r < s.vocab; r++ {
		sh := s.shards[s.shardOf(int64(r))]
		sh.mu.Lock()
		copy(dst.Row(r), sh.table.Row(r))
		sh.mu.Unlock()
	}
	return nil
}
