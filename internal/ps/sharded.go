package ps

import (
	"fmt"
	"sync"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

// ShardedSparse is the row-sharded variant of Sparse: rows are assigned to S
// independent server shards by `row % S` (hashing spreads the Zipf head, cf.
// internal/partition), each shard with its own lock, pending list and
// optimizer — so pushes against different shards proceed concurrently, as
// Parallax's partitioned parameter servers do. Aggregation semantics are
// identical to Sparse (synchronous rounds, gradient sums); the equivalence
// is tested.
type ShardedSparse struct {
	vocab, dim int
	shards     []*sparseShard
}

// sparseShard owns the rows r with r % S == index.
type sparseShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	table   *tensor.Dense // [vocab x dim]; only this shard's rows are live
	opt     optim.Optimizer
	workers int

	round   int
	pending []*tensor.Sparse
	err     error

	// Round-merge scratch, guarded by mu: pending parts are accumulated
	// into acc (exactly Concat's arrival order) and coalesced into coal,
	// both reused across rounds at their high-water capacity.
	acc  tensor.Sparse
	coal tensor.Sparse
	sort tensor.SortScratch
}

// PushScratch owns the reusable buffers of PushAndWaitWith: the row bucketer
// that groups gradient rows by owning shard and the per-shard part tensors.
// One PushScratch belongs to one worker; it must not be shared. The zero
// value is ready to use.
type PushScratch struct {
	bucket tensor.RowBucketer
	parts  []tensor.Sparse
	nS     int
	destOf func(int64) int // bound to the server's shard count, rebound on change
}

// NewShardedSparse creates S server shards over a [vocab x dim] embedding.
// The authoritative parameter values are copied out of `table` into each
// shard; optFor builds one optimizer per shard (bound to that shard's
// table copy), so optimizer state is sharded exactly like the parameters.
func NewShardedSparse(table *tensor.Dense, optFor func(*tensor.Dense) optim.Optimizer, workers, servers int) (*ShardedSparse, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("ps: workers must be positive, got %d", workers)
	}
	if servers <= 0 {
		return nil, fmt.Errorf("ps: servers must be positive, got %d", servers)
	}
	if table.Dims() != 2 {
		return nil, fmt.Errorf("ps: sharded server wants a 2-D table, got %v", table.Shape())
	}
	s := &ShardedSparse{
		vocab:  table.Dim(0),
		dim:    table.Dim(1),
		shards: make([]*sparseShard, servers),
	}
	for i := range s.shards {
		sh := &sparseShard{
			table:   table.Clone(),
			opt:     nil,
			workers: workers,
		}
		sh.opt = optFor(sh.table)
		sh.cond = sync.NewCond(&sh.mu)
		s.shards[i] = sh
	}
	return s, nil
}

// Servers returns the shard count S.
func (s *ShardedSparse) Servers() int { return len(s.shards) }

// shardOf maps a row to its owning shard.
func (s *ShardedSparse) shardOf(row int64) int { return int(row) % len(s.shards) }

// PushAndWait splits the gradient by owning shard, pushes each part, and
// blocks until every shard has applied its round (all workers contributed).
// Rows this worker has no gradient for still require an (empty) push so the
// shard's round can complete — every worker pushes to every shard each
// round, like Parallax clients do.
func (s *ShardedSparse) PushAndWait(grad *tensor.Sparse) error {
	var sc PushScratch
	return s.PushAndWaitWith(grad, &sc)
}

// PushAndWaitWith is PushAndWait against caller-owned scratch: the per-shard
// split runs through a stable counting-sort row bucketer instead of per-row
// map/append bucketing, and the shard parts are packed into reused tensors.
// Within each part, rows keep the gradient's original order (the bucketer is
// stable), so aggregation is bit-identical to PushAndWait. The scratch is
// safe to reuse immediately after return: a shard's round has completed —
// and its pending list been consumed — before pushAndWait returns.
//
//embrace:hotpath
func (s *ShardedSparse) PushAndWaitWith(grad *tensor.Sparse, sc *PushScratch) error {
	if grad.NumRows != s.vocab || grad.Dim != s.dim {
		return fmt.Errorf("ps: gradient [%d x %d] incompatible with table [%d x %d]",
			grad.NumRows, grad.Dim, s.vocab, s.dim)
	}
	nS := len(s.shards)
	sc.ensure(nS)
	sc.bucket.Bucket(grad.Indices, nS, sc.destOf)
	offs, perm := sc.bucket.Offsets(), sc.bucket.Perm()
	for shard := 0; shard < nS; shard++ {
		p := &sc.parts[shard]
		p.Reset()
		p.NumRows, p.Dim = s.vocab, s.dim
		for _, i := range perm[offs[shard]:offs[shard+1]] {
			p.Indices = append(p.Indices, grad.Indices[i])
			p.Vals = append(p.Vals, grad.Row(int(i))...)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, nS) //embrace:allow hotalloc per-call error slab shared with spawned pushes
	for shard := range s.shards {
		wg.Add(1)
		go func(shard int) { //embrace:allow hotalloc one concurrent push per shard is the point of sharding
			defer wg.Done()
			errs[shard] = s.shards[shard].pushAndWait(&sc.parts[shard])
		}(shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ensure binds the scratch to an S-shard server — the cold growth path.
func (sc *PushScratch) ensure(nS int) {
	if len(sc.parts) < nS {
		sc.parts = make([]tensor.Sparse, nS)
	}
	if sc.destOf == nil || sc.nS != nS {
		sc.nS = nS
		sc.destOf = func(row int64) int { return int(row) % nS }
	}
}

func (sh *sparseShard) pushAndWait(part *tensor.Sparse) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return sh.err
	}
	myRound := sh.round
	sh.pending = append(sh.pending, part)
	if len(sh.pending) == sh.workers {
		// Apply even when the round's gradient is empty: Adam's step
		// counter must advance once per round on every shard, matching a
		// monolithic server's single update. Accumulating the pending
		// parts in arrival order into the reused acc/coal scratch is
		// exactly Concat + the optimizer's internal Coalesce, without the
		// per-round tensors.
		sh.acc.Reset()
		var err error
		for _, p := range sh.pending {
			if err = p.AppendTo(&sh.acc); err != nil {
				break
			}
		}
		if err == nil {
			err = sh.opt.StepSparse(sh.acc.CoalesceInto(&sh.coal, &sh.sort))
		}
		if err != nil {
			sh.err = fmt.Errorf("ps: shard update: %w", err)
		}
		sh.pending = sh.pending[:0]
		sh.round++
		sh.cond.Broadcast()
		return sh.err
	}
	for sh.round == myRound && sh.err == nil {
		sh.cond.Wait()
	}
	return sh.err
}

// PullRows returns current values of the requested rows, reading each from
// its owning shard.
func (s *ShardedSparse) PullRows(rows []int64) (*tensor.Sparse, error) {
	dst := &tensor.Sparse{}
	if err := s.PullRowsInto(rows, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// PullRowsInto is PullRows writing into a reused destination tensor, so a
// worker pulling the same working set every step allocates nothing after the
// first pull. Row order and locking are identical to PullRows.
//
//embrace:hotpath
func (s *ShardedSparse) PullRowsInto(rows []int64, dst *tensor.Sparse) error {
	dst.Reset()
	dst.NumRows, dst.Dim = s.vocab, s.dim
	for _, r := range rows {
		if r < 0 || r >= int64(s.vocab) {
			return fmt.Errorf("ps: pull row %d out of range [0,%d)", r, s.vocab)
		}
		sh := s.shards[s.shardOf(r)]
		sh.mu.Lock()
		dst.Indices = append(dst.Indices, r)
		dst.Vals = append(dst.Vals, sh.table.Row(int(r))...)
		sh.mu.Unlock()
	}
	return nil
}

// PullAll assembles the authoritative table from the shards.
func (s *ShardedSparse) PullAll(dst *tensor.Dense) error {
	if dst.Dims() != 2 || dst.Dim(0) != s.vocab || dst.Dim(1) != s.dim {
		return fmt.Errorf("ps: pull into %v, server has [%d x %d]", dst.Shape(), s.vocab, s.dim)
	}
	for r := 0; r < s.vocab; r++ {
		sh := s.shards[s.shardOf(int64(r))]
		sh.mu.Lock()
		copy(dst.Row(r), sh.table.Row(r))
		sh.mu.Unlock()
	}
	return nil
}
