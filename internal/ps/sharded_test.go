package ps

import (
	"math/rand"
	"sync"
	"testing"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

func TestNewShardedSparseValidation(t *testing.T) {
	table := tensor.NewDense(4, 2)
	optFor := func(p *tensor.Dense) optim.Optimizer { return optim.NewSGD(p, 0.1) }
	if _, err := NewShardedSparse(table, optFor, 0, 2); err == nil {
		t.Fatal("expected workers error")
	}
	if _, err := NewShardedSparse(table, optFor, 2, 0); err == nil {
		t.Fatal("expected servers error")
	}
	if _, err := NewShardedSparse(tensor.NewDense(8), optFor, 2, 2); err == nil {
		t.Fatal("expected 2-D error")
	}
	s, err := NewShardedSparse(table, optFor, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Servers() != 3 {
		t.Fatalf("Servers = %d", s.Servers())
	}
}

func TestShardedSynchronousRound(t *testing.T) {
	const workers, servers = 4, 3
	table := tensor.Full(1, 10, 2)
	srv, err := NewShardedSparse(table,
		func(p *tensor.Dense) optim.Optimizer { return optim.NewSGD(p, 1) },
		workers, servers)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker touches a different row (spread over shards)
			// plus a shared hot row 9.
			g, err := tensor.NewSparse(10, 2, []int64{int64(w), 9}, []float32{1, 1, 1, 1})
			if err != nil {
				t.Error(err)
				return
			}
			if err := srv.PushAndWait(g); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	dst := tensor.NewDense(10, 2)
	if err := srv.PullAll(dst); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if dst.At(w, 0) != 0 {
			t.Fatalf("row %d = %v, want 0", w, dst.At(w, 0))
		}
	}
	if dst.At(9, 0) != 1-4 {
		t.Fatalf("hot row = %v, want -3", dst.At(9, 0))
	}
	if dst.At(5, 0) != 1 {
		t.Fatalf("untouched row = %v, want 1", dst.At(5, 0))
	}
}

// Sharded and monolithic servers must be numerically interchangeable.
func TestShardedMatchesMonolithic(t *testing.T) {
	const workers, rounds, vocab, dim = 3, 4, 12, 2
	rng := rand.New(rand.NewSource(4))
	init := tensor.RandDense(rng, 1, vocab, dim)

	mono := init.Clone()
	monoSrv, err := NewSparse(mono, optim.NewSGD(mono, 0.1), workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	shardSrv, err := NewShardedSparse(init.Clone(),
		func(p *tensor.Dense) optim.Optimizer { return optim.NewSGD(p, 0.1) },
		workers, 4)
	if err != nil {
		t.Fatal(err)
	}

	grads := make([][]*tensor.Sparse, rounds)
	for r := range grads {
		grads[r] = make([]*tensor.Sparse, workers)
		for w := range grads[r] {
			nnz := 1 + rng.Intn(6)
			idx := make([]int64, nnz)
			vals := make([]float32, nnz*dim)
			for i := range idx {
				idx[i] = int64(rng.Intn(vocab))
			}
			for i := range vals {
				vals[i] = rng.Float32()
			}
			g, _ := tensor.NewSparse(vocab, dim, idx, vals)
			grads[r][w] = g
		}
	}

	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := monoSrv.PushAndWait(grads[r][w]); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := shardSrv.PushAndWait(grads[r][w]); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
	a := tensor.NewDense(vocab, dim)
	b := tensor.NewDense(vocab, dim)
	if err := monoSrv.PullAll(a); err != nil {
		t.Fatal(err)
	}
	if err := shardSrv.PullAll(b); err != nil {
		t.Fatal(err)
	}
	if !a.AllClose(b, 1e-5) {
		t.Fatalf("sharded diverged from monolithic by %v", a.MaxAbsDiff(b))
	}
}

func TestShardedPullRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init := tensor.RandDense(rng, 1, 7, 3)
	srv, err := NewShardedSparse(init.Clone(),
		func(p *tensor.Dense) optim.Optimizer { return optim.NewSGD(p, 0.1) },
		1, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.PullRows([]int64{6, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int64{6, 0, 3}
	for i, r := range wantRows {
		for d := 0; d < 3; d++ {
			if got.Row(i)[d] != init.At(int(r), d) {
				t.Fatalf("row %d col %d mismatch", r, d)
			}
		}
	}
	if _, err := srv.PullRows([]int64{7}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestShardedRejectsBadGradShape(t *testing.T) {
	table := tensor.NewDense(4, 2)
	srv, _ := NewShardedSparse(table,
		func(p *tensor.Dense) optim.Optimizer { return optim.NewSGD(p, 0.1) }, 1, 2)
	bad, _ := tensor.NewSparse(4, 3, []int64{0}, []float32{1, 2, 3})
	if err := srv.PushAndWait(bad); err == nil {
		t.Fatal("expected shape error")
	}
}
