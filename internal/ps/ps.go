// Package ps implements the parameter-server substrate behind the BytePS
// and Parallax baselines (§5.2.3).
//
// A server owns the authoritative copy of one parameter tensor and an
// optimizer bound to it. Workers push gradients and pull fresh parameters;
// a round completes when all N workers have pushed, at which point the
// server applies the aggregated (summed) gradient — synchronous training,
// like the paper's baselines. Dense servers serve whole tensors (BytePS
// treats even embeddings as dense); Sparse servers serve row-sparse
// embeddings and answer row-subset pulls (Parallax).
//
// In the paper the servers are separate processes reached over the network;
// here they are monitors shared by the worker goroutines. The number of
// server shards S affects only communication cost, which the performance
// simulator (internal/perfsim) models via simnet.PS; the arithmetic of a
// sharded server is identical to this single monitor, so real-mode
// correctness is unaffected.
package ps

import (
	"fmt"
	"sync"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

// Dense is a synchronous dense-parameter server for one tensor.
type Dense struct {
	mu      sync.Mutex
	cond    *sync.Cond
	table   *tensor.Dense
	opt     optim.Optimizer
	workers int

	round   int
	pending *tensor.Dense
	pushed  int
	err     error
}

// NewDense creates a dense server owning table, updated by opt, serving
// `workers` synchronous workers.
func NewDense(table *tensor.Dense, opt optim.Optimizer, workers int) (*Dense, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("ps: workers must be positive, got %d", workers)
	}
	s := &Dense{table: table, opt: opt, workers: workers}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// PushAndWait contributes this worker's gradient to the current round and
// blocks until the round's aggregated update has been applied. The gradient
// sum (not mean) is applied, matching gradient aggregation in the paper's
// synchronous baselines.
func (s *Dense) PushAndWait(grad *tensor.Dense) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	myRound := s.round
	if s.pending == nil {
		s.pending = grad.Clone()
	} else if err := s.pending.Add(grad); err != nil {
		s.err = fmt.Errorf("ps: aggregating dense gradient: %w", err)
		s.cond.Broadcast()
		return s.err
	}
	s.pushed++
	if s.pushed == s.workers {
		if err := s.opt.StepDense(s.pending); err != nil {
			s.err = fmt.Errorf("ps: applying dense update: %w", err)
		}
		s.pending = nil
		s.pushed = 0
		s.round++
		s.cond.Broadcast()
		return s.err
	}
	for s.round == myRound && s.err == nil {
		s.cond.Wait()
	}
	return s.err
}

// Pull copies the authoritative parameters into dst.
func (s *Dense) Pull(dst *tensor.Dense) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dst.Len() != s.table.Len() {
		return fmt.Errorf("ps: pull into shape %v, server has %v", dst.Shape(), s.table.Shape())
	}
	copy(dst.Data(), s.table.Data())
	return nil
}

// Sparse is a synchronous row-sparse parameter server for an embedding
// table, the Parallax configuration for sparse variables.
type Sparse struct {
	mu      sync.Mutex
	cond    *sync.Cond
	table   *tensor.Dense // [vocab x dim], authoritative
	opt     optim.Optimizer
	workers int
	servers int

	round   int
	pending []*tensor.Sparse
	err     error
}

// NewSparse creates a sparse server owning table (shape [vocab x dim]),
// updated by opt, serving `workers` workers across `servers` logical server
// shards (S of the Table-2 PS cost model; arithmetic is shard-independent).
func NewSparse(table *tensor.Dense, opt optim.Optimizer, workers, servers int) (*Sparse, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("ps: workers must be positive, got %d", workers)
	}
	if servers <= 0 {
		return nil, fmt.Errorf("ps: servers must be positive, got %d", servers)
	}
	if table.Dims() != 2 {
		return nil, fmt.Errorf("ps: sparse server wants a 2-D table, got %v", table.Shape())
	}
	s := &Sparse{table: table, opt: opt, workers: workers, servers: servers}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Servers returns the logical shard count S.
func (s *Sparse) Servers() int { return s.servers }

// PushAndWait contributes a row-sparse gradient and blocks until the round's
// aggregated sparse update (the coalesced concatenation of all workers'
// gradients) has been applied.
func (s *Sparse) PushAndWait(grad *tensor.Sparse) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	myRound := s.round
	s.pending = append(s.pending, grad)
	if len(s.pending) == s.workers {
		merged, err := tensor.Concat(s.pending...)
		if err == nil {
			err = s.opt.StepSparse(merged)
		}
		if err != nil {
			s.err = fmt.Errorf("ps: applying sparse update: %w", err)
		}
		s.pending = nil
		s.round++
		s.cond.Broadcast()
		return s.err
	}
	for s.round == myRound && s.err == nil {
		s.cond.Wait()
	}
	return s.err
}

// PullRows returns the current values of the requested embedding rows. A
// Parallax worker pulls exactly the rows its next batch needs.
func (s *Sparse) PullRows(rows []int64) (*tensor.Sparse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		if r < 0 || r >= int64(s.table.Dim(0)) {
			return nil, fmt.Errorf("ps: pull row %d out of range [0,%d)", r, s.table.Dim(0))
		}
	}
	return tensor.FromDenseRows(s.table, rows), nil
}

// PullAll copies the whole table into dst, used to verify cross-strategy
// equivalence at the end of training.
func (s *Sparse) PullAll(dst *tensor.Dense) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dst.Len() != s.table.Len() {
		return fmt.Errorf("ps: pull into shape %v, server has %v", dst.Shape(), s.table.Shape())
	}
	copy(dst.Data(), s.table.Data())
	return nil
}
