package ps

import (
	"math/rand"
	"sync"
	"testing"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

func TestNewDenseValidation(t *testing.T) {
	table := tensor.NewDense(4)
	if _, err := NewDense(table, optim.NewSGD(table, 0.1), 0); err == nil {
		t.Fatal("expected error for zero workers")
	}
}

func TestDenseSynchronousRound(t *testing.T) {
	const workers = 4
	table := tensor.Full(1, 3)
	srv, err := NewDense(table, optim.NewSGD(table, 0.1), workers)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := tensor.Full(float32(w+1), 3) // sum across workers = 10
			if err := srv.PushAndWait(g); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	// p = 1 - 0.1*10 = 0.
	dst := tensor.NewDense(3)
	if err := srv.Pull(dst); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst.Data() {
		if v != 0 {
			t.Fatalf("param = %v, want 0", v)
		}
	}
}

func TestDenseMultipleRounds(t *testing.T) {
	const workers, rounds = 3, 5
	table := tensor.Full(0, 2)
	srv, _ := NewDense(table, optim.NewSGD(table, 1), workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				g := tensor.Full(1, 2)
				if err := srv.PushAndWait(g); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	dst := tensor.NewDense(2)
	_ = srv.Pull(dst)
	// Each round applies sum=3 with lr 1: after 5 rounds p = -15.
	if dst.Data()[0] != -15 {
		t.Fatalf("param = %v, want -15", dst.Data()[0])
	}
}

func TestDensePullShapeError(t *testing.T) {
	table := tensor.NewDense(4)
	srv, _ := NewDense(table, optim.NewSGD(table, 0.1), 1)
	if err := srv.Pull(tensor.NewDense(5)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSparseValidation(t *testing.T) {
	table := tensor.NewDense(4, 2)
	opt := optim.NewSGD(table, 0.1)
	if _, err := NewSparse(table, opt, 0, 1); err == nil {
		t.Fatal("expected workers error")
	}
	if _, err := NewSparse(table, opt, 1, 0); err == nil {
		t.Fatal("expected servers error")
	}
	if _, err := NewSparse(tensor.NewDense(8), opt, 1, 1); err == nil {
		t.Fatal("expected 2-D table error")
	}
}

func TestSparseRoundAggregatesAllWorkers(t *testing.T) {
	const workers = 3
	table := tensor.Full(1, 5, 2)
	srv, err := NewSparse(table, optim.NewSGD(table, 1), workers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Servers() != 2 {
		t.Fatalf("Servers = %d", srv.Servers())
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker pushes a gradient of 1s on row w and row 4.
			g, err := tensor.NewSparse(5, 2, []int64{int64(w), 4}, []float32{1, 1, 1, 1})
			if err != nil {
				t.Error(err)
				return
			}
			if err := srv.PushAndWait(g); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	dst := tensor.NewDense(5, 2)
	if err := srv.PullAll(dst); err != nil {
		t.Fatal(err)
	}
	// Rows 0..2: one contribution each -> 1 - 1 = 0. Row 3: untouched = 1.
	// Row 4: three contributions -> 1 - 3 = -2.
	for w := 0; w < 3; w++ {
		if dst.At(w, 0) != 0 {
			t.Fatalf("row %d = %v, want 0", w, dst.At(w, 0))
		}
	}
	if dst.At(3, 0) != 1 {
		t.Fatalf("row 3 = %v, want 1", dst.At(3, 0))
	}
	if dst.At(4, 0) != -2 {
		t.Fatalf("row 4 = %v, want -2", dst.At(4, 0))
	}
}

func TestSparsePullRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	table := tensor.RandDense(rng, 1, 6, 3)
	srv, _ := NewSparse(table, optim.NewSGD(table, 0.1), 1, 1)
	got, err := srv.PullRows([]int64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 2 {
		t.Fatalf("NNZ = %d", got.NNZ())
	}
	for d := 0; d < 3; d++ {
		if got.Row(0)[d] != table.At(4, d) || got.Row(1)[d] != table.At(1, d) {
			t.Fatal("pulled rows do not match table")
		}
	}
	if _, err := srv.PullRows([]int64{6}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestSparseEqualsAllGatherSemantics(t *testing.T) {
	// Training through the PS must produce the same table as worker-side
	// aggregation (AllGather-then-update) given the same gradients — the
	// synchronous-equivalence property all baselines share.
	const workers, rounds = 4, 3
	rng := rand.New(rand.NewSource(2))
	init := tensor.RandDense(rng, 1, 8, 2)

	psTable := init.Clone()
	srv, _ := NewSparse(psTable, optim.NewSGD(psTable, 0.05), workers, 2)

	refTable := init.Clone()
	refOpt := optim.NewSGD(refTable, 0.05)

	grads := make([][]*tensor.Sparse, rounds)
	for r := range grads {
		grads[r] = make([]*tensor.Sparse, workers)
		for w := range grads[r] {
			nnz := 1 + rng.Intn(5)
			idx := make([]int64, nnz)
			vals := make([]float32, nnz*2)
			for i := range idx {
				idx[i] = int64(rng.Intn(8))
			}
			for i := range vals {
				vals[i] = rng.Float32()
			}
			g, _ := tensor.NewSparse(8, 2, idx, vals)
			grads[r][w] = g
		}
	}

	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := srv.PushAndWait(grads[r][w]); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		merged, err := tensor.Concat(grads[r]...)
		if err != nil {
			t.Fatal(err)
		}
		if err := refOpt.StepSparse(merged); err != nil {
			t.Fatal(err)
		}
	}
	dst := tensor.NewDense(8, 2)
	_ = srv.PullAll(dst)
	if !dst.AllClose(refTable, 1e-5) {
		t.Fatalf("PS and reference diverged by %v", dst.MaxAbsDiff(refTable))
	}
}
