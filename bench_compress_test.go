// Wire-compression benchmarks: the hot-path 8-rank Zipf workload runs with
// the embedding AlltoAll in each wire mode — raw, lossless delta-varint, and
// dual-level lossy quantization — and reports bytes on the wire next to step
// time. The custom columns are raw_MB_per_step (pre-codec payload),
// wire_MB_per_step (what actually crossed the fabric), raw_over_wire (the
// compression ratio), and final_loss (mean across ranks at the last timed
// step, the accuracy column of the EXPERIMENTS.md table). `make
// bench-compress` runs these and records BENCH_compress.json.
package embrace_test

import (
	"sync"
	"testing"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/compress"
	"embrace/internal/metrics"
	"embrace/internal/strategies"
)

// benchCompressSteps drives b.N lockstep EmbRace 2D training steps with the
// given wire codec, then reports per-step byte traffic of the two sparse
// embedding exchanges aggregated across all ranks.
func benchCompressSteps(b *testing.B, codec collective.SparseCodec) {
	b.Helper()
	cfg := hotBenchConfig()
	cfg.Sched = strategies.Sched2D
	cfg.Codec = codec
	sh, err := strategies.NewShared(strategies.EmbRace, cfg, hotBenchRanks)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	recorders := make([]*metrics.OpRecorder, hotBenchRanks)
	finalLoss := make([]float64, hotBenchRanks)
	for i := range recorders {
		recorders[i] = metrics.NewOpRecorder()
	}
	ready := make(chan struct{}, hotBenchRanks)
	start := make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		done <- comm.RunRanks(hotBenchRanks, func(t comm.Transport) error {
			r := t.Rank()
			cm := collective.NewCommunicator(t, collective.WithObserver(recorders[r]))
			w, err := strategies.NewWorker(strategies.EmbRace, cm, cfg, sh)
			if err != nil {
				return err
			}
			windows, targets, next := hotBenchBatch(r)
			if _, err := w.Step(0, windows, targets, next); err != nil {
				return err
			}
			ready <- struct{}{}
			<-start
			for i := 0; i < b.N; i++ {
				stats, err := w.Step(i+1, windows, targets, next)
				if err != nil {
					return err
				}
				finalLoss[r] = stats.Loss
			}
			_, err = w.FullEmbedding()
			once.Do(func() { b.StopTimer() })
			return err
		})
	}()
	for i := 0; i < hotBenchRanks; i++ {
		<-ready
	}
	b.ResetTimer()
	close(start)
	if err := <-done; err != nil {
		b.Fatal(err)
	}

	var raw, wire int64
	for _, rec := range recorders {
		for _, op := range []string{strategies.OpEmbGrad, strategies.OpEmbDelayed} {
			st := rec.PerOp()[op]
			if codec == nil {
				// The raw path reports no codec counters; its wire bytes are
				// its payload bytes (index/value streams plus headers).
				raw += st.PayloadBytes
				wire += st.PayloadBytes
				continue
			}
			raw += st.RawBytes
			wire += st.WireBytes
		}
	}
	steps := float64(b.N)
	b.ReportMetric(float64(raw)/1e6/steps, "raw_MB_per_step")
	b.ReportMetric(float64(wire)/1e6/steps, "wire_MB_per_step")
	if wire > 0 {
		b.ReportMetric(float64(raw)/float64(wire), "raw_over_wire")
	}
	var loss float64
	for _, l := range finalLoss {
		loss += l
	}
	b.ReportMetric(loss/float64(hotBenchRanks), "final_loss")
}

func BenchmarkCompressExchangeRaw(b *testing.B) {
	benchCompressSteps(b, nil)
}

func BenchmarkCompressExchangeLossless(b *testing.B) {
	benchCompressSteps(b, compress.DeltaRaw{})
}

func BenchmarkCompressExchangeLossy(b *testing.B) {
	q, err := compress.NewDualQuant(1e-4, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	benchCompressSteps(b, q)
}
