// Serving-plane scale benchmarks: a 4-rank cluster over the real TCP fabric
// serves a closed-loop Zipf workload with 1, 2, and 4 ingress drivers, so
// qps / p50 / p99 price what the driver set buys — concurrent admission,
// per-driver micro-batching, and per-driver tag planes — and the hot-set hit
// rate shows how much of the Zipf head the replication manager keeps off the
// fabric.
//
// The sweep is weak scaling: each driver fronts a fixed closed-loop client
// pool, so offered concurrency grows with the driver count while per-driver
// load stays constant. Every configuration is admission-window-bound (the
// client pool never fills MaxBatch, so each batch closes on BatchWindow);
// a single driver serializes those windows, N drivers overlap them. QPS
// should therefore grow ~linearly with drivers at flat latency until the
// host's cores saturate. `make bench-serve-scale` runs these and records
// the numbers in BENCH_serve_scale.json; EXPERIMENTS.md tracks the curve.
package embrace_test

import (
	"fmt"
	"testing"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/nn"
	"embrace/internal/serve"
	"embrace/internal/tensor"
)

// serveScale* pin the benchmark's shape: a vocabulary large enough that the
// Zipf tail misses every cache, four ranks, a per-driver client pool small
// enough that batches close on the admission window (never on MaxBatch),
// and a window wide enough that admission — not row fetch — dominates the
// request's life. That makes the single-driver config admission-bound: the
// serialization the driver set exists to remove.
const (
	serveScaleRanks         = 4
	serveScaleVocab         = 4096
	serveScaleDim           = 32
	serveScaleClientsPerDrv = 4
	serveScaleReqsPerClient = 100
	serveScaleWindow        = 2 * time.Millisecond
)

// serveScaleCheckpoint snapshots a freshly seeded model into the serving
// checkpoint layout: embedding table plus trunk weights.
func serveScaleCheckpoint() *checkpoint.Checkpoint {
	m := nn.NewModel(7, serveScaleVocab, serveScaleDim, 16)
	ck := &checkpoint.Checkpoint{
		Step:   1,
		Params: map[string]*tensor.Dense{"emb": m.Emb.Table.Clone()},
	}
	for _, p := range m.Trunk.Params() {
		ck.Params[p.Name] = p.Tensor.Clone()
	}
	return ck
}

// serveScaleLoad is one measured load pass: serveScaleClientsPerDrv clients
// per driver (weak scaling) replaying the same seeded Zipf id streams.
func serveScaleLoad(drivers int) serve.LoadConfig {
	return serve.LoadConfig{
		Clients:       serveScaleClientsPerDrv * drivers,
		Requests:      serveScaleReqsPerClient,
		IDsPerRequest: 4,
		ZipfS:         1.3,
		ZipfV:         2,
		Seed:          1,
	}
}

func benchServeScale(b *testing.B, drivers int) {
	b.Helper()
	c, err := serve.New(serveScaleCheckpoint(), serve.Config{
		Ranks:       serveScaleRanks,
		Drivers:     drivers,
		Partition:   serve.PartConsistent,
		CacheRows:   256,
		HotRows:     256,
		HotPromote:  2,
		MaxBatch:    32,
		BatchWindow: serveScaleWindow,
		QueueDepth:  1024,
		TCP:         true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	// Warm-up pass outside the timed region: promotes the Zipf head into the
	// hot set and grows every TCP buffer to its high-water mark.
	warm := serveScaleLoad(drivers)
	warm.Requests = 30
	if rep := serve.RunLoad(c, warm); rep.Errors > 0 {
		b.Fatalf("warmup errors: %+v", rep)
	}

	var completed int64
	var elapsed time.Duration
	var last serve.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := serve.RunLoad(c, serveScaleLoad(drivers))
		if rep.Errors > 0 {
			b.Fatalf("load errors: %+v", rep)
		}
		completed += rep.Requests - rep.Errors
		elapsed += rep.Elapsed
		last = rep
	}
	b.StopTimer()

	if elapsed > 0 {
		b.ReportMetric(float64(completed)/elapsed.Seconds(), "qps")
	}
	b.ReportMetric(last.Latency.P50*1e3, "p50_ms")
	b.ReportMetric(last.Latency.P99*1e3, "p99_ms")
	st := c.Stats()
	b.ReportMetric(100*st.Hot.HitRate(), "hotpct")
	if err := c.Err(); err != nil {
		b.Fatalf("cluster error: %v", err)
	}
}

func BenchmarkServeScale(b *testing.B) {
	for _, drivers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("drivers=%d", drivers), func(b *testing.B) {
			benchServeScale(b, drivers)
		})
	}
}
