// Package embrace is a Go reproduction of "EmbRace: Accelerating Sparse
// Communication for Distributed Training of Deep Neural Networks"
// (Li et al., ICPP 2022).
//
// It exposes the three things a downstream user needs:
//
//   - Real distributed training (Train): N in-process ranks train a real
//     embedding+MLP model with genuine collective data movement under any of
//     the paper's five strategies — the four baselines or EmbRace's hybrid
//     AlltoAll/AllReduce communication with 2D scheduling and the modified
//     Adam optimizer.
//
//   - Performance simulation (Simulate): a calibrated discrete-event model
//     of the paper's two GPU clusters that predicts step time and
//     Computation Stall for the paper's four NLP models under every
//     strategy, reproducing the evaluation's figures.
//
//   - Experiment harnesses (RunExperiment): regenerate every table and
//     figure of the paper's evaluation section.
//
// The substrates — tensors, collectives, schedulers, parameter servers, the
// network cost model — live under internal/ and are documented in DESIGN.md.
package embrace

import (
	"fmt"
	"io"
	"math"
	"os"

	"embrace/internal/checkpoint"
	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/compress"
	"embrace/internal/data"
	"embrace/internal/experiments"
	"embrace/internal/metrics"
	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
	"embrace/internal/simnet"
	"embrace/internal/strategies"
	"embrace/internal/tensor"
	"embrace/internal/trace"
	"embrace/internal/trainer"
)

// Strategy names a distributed training strategy (§5.2.3).
type Strategy string

// The five strategies of the paper's evaluation.
const (
	BytePS           Strategy = "byteps"
	HorovodAllReduce Strategy = "horovod-allreduce"
	HorovodAllGather Strategy = "horovod-allgather"
	Parallax         Strategy = "parallax"
	EmbRace          Strategy = "embrace"
)

// Strategies returns all strategies in the paper's comparison order.
func Strategies() []Strategy {
	return []Strategy{BytePS, HorovodAllReduce, HorovodAllGather, Parallax, EmbRace}
}

// SchedLevel selects EmbRace's scheduling level (the Figure-9 ablation).
type SchedLevel string

// Scheduling levels.
const (
	// SchedNone is hybrid communication only ("EmbRace w/o Scheduling").
	SchedNone SchedLevel = "none"
	// SchedHorizontal adds Block-level Horizontal Scheduling (§4.2.1).
	SchedHorizontal SchedLevel = "horizontal"
	// Sched2D adds Vertical Sparse Scheduling on top (§4.2.2) — full
	// EmbRace.
	Sched2D SchedLevel = "2d"
)

// GPU selects one of the paper's cluster types.
type GPU string

// The paper's GPU kinds.
const (
	RTX3090 GPU = "RTX3090"
	RTX2080 GPU = "RTX2080"
)

func (g GPU) kind() (modelzoo.GPUKind, error) {
	switch g {
	case RTX3090:
		return modelzoo.RTX3090, nil
	case RTX2080:
		return modelzoo.RTX2080, nil
	default:
		return 0, fmt.Errorf("embrace: unknown GPU %q", g)
	}
}

func (s Strategy) perf() (perfsim.Strategy, error) {
	switch s {
	case BytePS:
		return perfsim.StratBytePS, nil
	case HorovodAllReduce:
		return perfsim.StratAllReduce, nil
	case HorovodAllGather:
		return perfsim.StratAllGather, nil
	case Parallax:
		return perfsim.StratParallax, nil
	case EmbRace:
		return perfsim.StratEmbRace, nil
	default:
		return 0, fmt.Errorf("embrace: unknown strategy %q", s)
	}
}

func (l SchedLevel) perf() (perfsim.SchedMode, error) {
	switch l {
	case SchedNone, "":
		return perfsim.SchedDefault, nil
	case SchedHorizontal:
		return perfsim.SchedHorizontal, nil
	case Sched2D:
		return perfsim.Sched2D, nil
	default:
		return 0, fmt.Errorf("embrace: unknown scheduling level %q", l)
	}
}

// ---------------------------------------------------------------------------
// Performance simulation
// ---------------------------------------------------------------------------

// SimJob describes one performance-simulation run.
type SimJob struct {
	// Model is one of the paper's models: "LM", "GNMT-8", "Transformer",
	// "BERT-base".
	Model string
	// GPU selects the cluster type; GPUs the total worker count (4, 8 or
	// 16 in the paper; any multiple of 4, or 1/2, works).
	GPU  GPU
	GPUs int
	// Strategy selects the communication strategy; Sched the EmbRace
	// scheduling level (ignored by baselines).
	Strategy Strategy
	Sched    SchedLevel
}

// SimResult reports a simulated steady-state training iteration.
type SimResult struct {
	// StepSeconds is the steady-state step time.
	StepSeconds float64
	// StallSeconds is the Computation Stall (§5.4).
	StallSeconds float64
	// ComputeSeconds is the useful FP+BP compute per step.
	ComputeSeconds float64
	// TokensPerSec is throughput in the paper's metric.
	TokensPerSec float64
}

// Simulate runs the calibrated discrete-event performance model for the job.
func Simulate(job SimJob) (SimResult, error) {
	gpu, err := job.GPU.kind()
	if err != nil {
		return SimResult{}, err
	}
	strat, err := job.Strategy.perf()
	if err != nil {
		return SimResult{}, err
	}
	mode, err := job.Sched.perf()
	if err != nil {
		return SimResult{}, err
	}
	m, err := modelzoo.ByName(job.Model)
	if err != nil {
		return SimResult{}, err
	}
	st, err := m.MeasureGradStats(gpu, 10, 42)
	if err != nil {
		return SimResult{}, err
	}
	cl, err := modelzoo.NewCluster(gpu, job.GPUs)
	if err != nil {
		return SimResult{}, err
	}
	est, err := cl.Estimator()
	if err != nil {
		return SimResult{}, err
	}
	spec := m.PerfSpec(gpu, st, strat == perfsim.StratEmbRace)
	met, _, err := perfsim.RunJob(spec, strat, mode, est, 6)
	if err != nil {
		return SimResult{}, err
	}
	tokens := st.RawRows * float64(job.GPUs)
	return SimResult{
		StepSeconds:    met.StepTime,
		StallSeconds:   met.Stall,
		ComputeSeconds: met.UsefulCompute,
		TokensPerSec:   tokens / met.StepTime,
	}, nil
}

// SimulateTrace runs the performance simulation for the job and writes the
// resulting execution timeline as Chrome trace-event JSON (viewable in
// chrome://tracing or Perfetto) — an interactive Figure 6.
func SimulateTrace(job SimJob, w io.Writer) error {
	gpu, err := job.GPU.kind()
	if err != nil {
		return err
	}
	strat, err := job.Strategy.perf()
	if err != nil {
		return err
	}
	mode, err := job.Sched.perf()
	if err != nil {
		return err
	}
	m, err := modelzoo.ByName(job.Model)
	if err != nil {
		return err
	}
	st, err := m.MeasureGradStats(gpu, 10, 42)
	if err != nil {
		return err
	}
	cl, err := modelzoo.NewCluster(gpu, job.GPUs)
	if err != nil {
		return err
	}
	est, err := cl.Estimator()
	if err != nil {
		return err
	}
	spec := m.PerfSpec(gpu, st, strat == perfsim.StratEmbRace)
	_, tl, err := perfsim.RunJob(spec, strat, mode, est, 6)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("%s / %s @ %dx %s", job.Model, job.Strategy, job.GPUs, job.GPU)
	return trace.Export(w, title, tl)
}

// Models returns the names of the paper's four models.
func Models() []string {
	out := make([]string, 0, 4)
	for _, m := range modelzoo.All() {
		out = append(out, m.Name)
	}
	return out
}

// ---------------------------------------------------------------------------
// Real distributed training
// ---------------------------------------------------------------------------

// TrainConfig describes a real-execution training run: N rank goroutines
// train an embedding+MLP next-token model on a synthetic Zipf corpus with
// genuine collective communication.
type TrainConfig struct {
	// Strategy selects the communication strategy; Sched the EmbRace
	// scheduling level.
	Strategy Strategy
	Sched    SchedLevel
	// Workers is the number of ranks. EmbRace requires EmbDim%Workers==0.
	Workers int
	// Steps is the number of training iterations.
	Steps int
	// Vocab, EmbDim, Hidden size the model; zero values pick defaults
	// (2000, 32, 32).
	Vocab, EmbDim, Hidden int
	// BatchSentences per worker per step; zero picks 16.
	BatchSentences int
	// Adam selects the Adam optimizer (with the §5.7 modification under
	// EmbRace 2D); false selects SGD.
	Adam bool
	// LR is the learning rate; zero picks 0.01.
	LR float32
	// Seed makes the run deterministic.
	Seed int64
	// OverTCP carries all collective traffic over real loopback TCP
	// sockets instead of the in-process fabric; results are identical.
	OverTCP bool
	// CheckpointPath, when set, saves the final parameters (embedding +
	// trunk) and completed step count there.
	CheckpointPath string
	// ResumeFrom, when set, warm-starts from a checkpoint written by a run
	// with the SAME configuration: parameters are restored and the data
	// stream fast-forwards past the already-trained steps. With SGD the
	// resumed run is bit-identical to an uninterrupted one; Adam resumes
	// parameters but starts with fresh moments.
	ResumeFrom string
	// ChunkBytes sets the Communicator's pipelining segment size for dense
	// ring collectives: zero picks the trainer default, negative disables
	// chunking. Any value yields bit-identical training results.
	ChunkBytes int
	// ChaosSeed, when non-zero, trains over a deterministic fault-injecting
	// transport (comm.MaskableChaosPlan: message delay, duplication,
	// reordering and transient send failures, all drawn from this seed).
	// The self-healing collectives mask every injected fault, so results
	// are bit-identical to ChaosSeed == 0; the fault counts land in
	// TrainResult. Incompatible with OverTCP.
	ChaosSeed int64
	// TracePath, when set, records per-rank execution spans during the run
	// and writes them there as Chrome trace-event JSON (open in Perfetto or
	// chrome://tracing). The per-phase time breakdown lands in
	// TrainResult.PhaseSeconds.
	TracePath string
	// Compress selects the wire codec for EmbRace's embedding-gradient
	// AlltoAll (DESIGN.md §12; baselines ignore it). "" ships raw
	// index/value streams; "lossless" (alias "delta-raw") delta-varint
	// encodes row ids and keeps training bit-identical; "lossy" (alias
	// "dualq") adds dual-level error-bounded value quantization — prior
	// rows get CompressEpsPrior, delayed rows CompressEpsDelayed.
	Compress string
	// CompressEpsPrior and CompressEpsDelayed bound the per-element
	// absolute error of the lossy codec's prior and delayed rows. Zero
	// values pick 1e-4 and 1e-3. Ignored unless Compress is "lossy"/"dualq".
	CompressEpsPrior, CompressEpsDelayed float32
	// Elastic runs the job under the self-healing supervisor (DESIGN.md
	// §13): on an attributed rank crash the run rolls back to its last
	// in-memory snapshot, shrinks the world by the dead ranks (redistributing
	// EmbRace's embedding columns across the survivors) and resumes; the
	// training trajectory stays bit-identical to an uninterrupted run of the
	// same effective batch schedule. Incompatible with OverTCP (the
	// supervisor rebuilds in-process worlds) and TracePath. The epoch
	// segmentation lands in TrainResult.Elastic.
	Elastic bool
	// ElasticCheckpointEvery is the snapshot cadence in steps; a fault rolls
	// back at most ElasticCheckpointEvery-1 steps. Zero picks the trainer
	// default (5).
	ElasticCheckpointEvery int
	// ElasticRejoin readmits recovered ranks: ElasticRejoinAfter steps after
	// a shrink (zero: the checkpoint cadence) the shrunk world stops at a
	// step boundary and the next epoch resumes at full size.
	ElasticRejoin      bool
	ElasticRejoinAfter int
	// CrashRank and CrashStep inject a deterministic rank failure for
	// elastic demos and experiments: rank CrashRank crashes on its first
	// send of training step CrashStep — the token gather under EmbRace, the
	// embedding-gradient collective under the Horovod baselines. Enabled
	// when CrashStep > 0 and Elastic is set; the surrounding chaos noise is
	// drawn from ChaosSeed (or seed 1 when ChaosSeed is zero).
	CrashRank, CrashStep int
}

// TrainResult reports a completed training run.
type TrainResult struct {
	// Losses holds the per-step mean training loss.
	Losses []float64
	// Accuracies holds the per-step top-1 next-token accuracy.
	Accuracies []float64
	// FinalPPL is the perplexity of the last step.
	FinalPPL float64
	// TokensTrained counts non-pad tokens consumed.
	TokensTrained int
	// CommBytes is the measured communication payload across all ranks;
	// CommMessages the message count. Comparing strategies' CommBytes on
	// the same job reproduces the paper's traffic analysis with real data.
	CommBytes    int64
	CommMessages int64
	// CommPerOp breaks the traffic down by logical collective operation
	// (summed over ranks): e.g. "emb/grad" vs "dense/w1" vs
	// "trainer/stats". It shows WHERE a strategy's bytes go, the per-op
	// refinement of CommBytes.
	CommPerOp map[string]OpTraffic
	// FaultsMasked counts communication faults the self-healing collectives
	// absorbed (non-zero only under ChaosSeed); FaultsFatal counts faults
	// that surfaced as errors (always zero when Train returns nil error).
	FaultsMasked, FaultsFatal int64
	// PhaseSeconds sums measured span durations by phase name across all
	// ranks (only when TracePath was set): e.g. "fp+bp" vs "xchg/prior" vs
	// "xchg/delayed" — where the run's wall time went.
	PhaseSeconds map[string]float64
	// Elastic records the world-epoch segmentation of an elastic run (only
	// when TrainConfig.Elastic was set): one entry per world build, in
	// order. Recoveries counts the faults the supervisor absorbed.
	Elastic    []ElasticEpoch
	Recoveries int
}

// ElasticEpoch summarizes one world epoch of an elastic run: which global
// steps it contributed, at what world size, and how it ended ("completed",
// "fault", or "rejoin" — stopped so recovered ranks could be readmitted).
type ElasticEpoch struct {
	Epoch     int
	Workers   int
	StartStep int
	EndStep   int
	End       string
	// Crashed lists the ranks lost to a faulted epoch (old-world numbering).
	Crashed []int
	// RecoverySeconds is the fault-detected (or rejoin-stop) to
	// resumed-traffic latency entering this epoch; zero for epoch 0.
	RecoverySeconds float64
}

// OpTraffic is the measured traffic of one logical collective operation.
type OpTraffic struct {
	// Messages counts point-to-point sends across all ranks.
	Messages int64
	// Bytes is the payload volume across all ranks — for compressed sparse
	// ops, the encoded bytes that actually hit the wire.
	Bytes int64
	// RawBytes is what the op's sparse streams would have occupied
	// uncompressed; zero when the op ran without a wire codec. RawBytes /
	// Bytes is the op's compression ratio.
	RawBytes int64
}

// perOpTraffic converts the trainer's per-op stats into the public form.
func perOpTraffic(per map[string]metrics.OpStats) map[string]OpTraffic {
	if len(per) == 0 {
		return nil
	}
	out := make(map[string]OpTraffic, len(per))
	for op, s := range per {
		out[op] = OpTraffic{Messages: s.Messages, Bytes: s.PayloadBytes, RawBytes: s.RawBytes}
	}
	return out
}

// sparseCodecFor resolves a codec mode name from TrainConfig/ServeConfig
// into the collective-side codec. Empty mode means no compression.
func sparseCodecFor(mode string, epsPrior, epsDelayed float32) (collective.SparseCodec, error) {
	switch mode {
	case "":
		return nil, nil
	case "lossless", "delta-raw":
		return compress.DeltaRaw{}, nil
	case "lossy", "dualq":
		if epsPrior == 0 {
			epsPrior = 1e-4
		}
		if epsDelayed == 0 {
			epsDelayed = 1e-3
		}
		dq, err := compress.NewDualQuant(epsPrior, epsDelayed)
		if err != nil {
			return nil, err
		}
		return dq, nil
	default:
		return nil, fmt.Errorf("embrace: unknown compression mode %q (want \"\", \"lossless\" or \"lossy\")", mode)
	}
}

func (c TrainConfig) job() (trainer.Job, error) {
	var name strategies.Name
	switch c.Strategy {
	case BytePS:
		name = strategies.BytePS
	case HorovodAllReduce:
		name = strategies.HorovodAllReduce
	case HorovodAllGather:
		name = strategies.HorovodAllGather
	case Parallax:
		name = strategies.Parallax
	case EmbRace, "":
		name = strategies.EmbRace
	default:
		return trainer.Job{}, fmt.Errorf("embrace: unknown strategy %q", c.Strategy)
	}
	sched := strategies.SchedNone
	if c.Sched == Sched2D {
		sched = strategies.Sched2D
	}
	opt := strategies.OptSGD
	if c.Adam {
		opt = strategies.OptAdam
	}
	vocab := c.Vocab
	if vocab == 0 {
		vocab = 2000
	}
	embDim := c.EmbDim
	if embDim == 0 {
		embDim = 32
	}
	hidden := c.Hidden
	if hidden == 0 {
		hidden = 32
	}
	batch := c.BatchSentences
	if batch == 0 {
		batch = 16
	}
	lr := c.LR
	if lr == 0 {
		lr = 0.01
	}
	codec, err := sparseCodecFor(c.Compress, c.CompressEpsPrior, c.CompressEpsDelayed)
	if err != nil {
		return trainer.Job{}, err
	}
	job := trainer.Job{
		Strategy: name,
		Workers:  c.Workers,
		Steps:    c.Steps,
		Window:   4,
		Model: strategies.Config{
			Seed:      c.Seed,
			Vocab:     vocab,
			EmbDim:    embDim,
			Hidden:    hidden,
			Optimizer: opt,
			LR:        lr,
			Sched:     sched,
			PSServers: max(1, c.Workers/4),
			Codec:     codec,
		},
		Data: data.Config{
			VocabSize:      vocab,
			BatchSentences: batch,
			MaxSeqLen:      10,
			MinSeqLen:      6,
			ZipfS:          1.5,
			ZipfV:          4,
		},
		DataSeed:   c.Seed + 1,
		OverTCP:    c.OverTCP,
		ChunkBytes: c.ChunkBytes,
	}
	if c.ChaosSeed != 0 {
		plan := comm.MaskableChaosPlan(c.ChaosSeed)
		job.Chaos = &plan
	}
	return job, nil
}

// SeqTrainConfig describes distributed training of the recurrent model
// (embedding -> GRU -> softmax): per-token sparse embedding gradients, the
// gradient structure of the paper's translation models.
type SeqTrainConfig struct {
	// Workers, Steps and Window (BPTT length) shape the job.
	Workers, Steps, Window int
	// Vocab, EmbDim, Hidden size the model; zero values pick defaults
	// (500, 12, 16).
	Vocab, EmbDim, Hidden int
	// BatchSentences per worker per step; zero picks 12.
	BatchSentences int
	// Vertical enables Algorithm 1's prior/delayed split with the
	// modified Adam.
	Vertical bool
	// LR is the Adam learning rate; zero picks 0.01.
	LR float32
	// Seed makes the run deterministic.
	Seed int64
	// Text, when non-empty, trains on real sentences: a frequency-sorted
	// tokenizer is built over them (capped at Vocab ids) and rank r takes
	// every Workers-th sentence.
	Text []string
	// OverTCP runs ranks over loopback TCP.
	OverTCP bool
	// ChunkBytes sets the Communicator's pipelining segment size (0 =
	// trainer default, <0 = off); results are identical for any value.
	ChunkBytes int
}

// TrainSeq runs real distributed training of the recurrent model.
func TrainSeq(cfg SeqTrainConfig) (*TrainResult, error) {
	vocab := cfg.Vocab
	if vocab == 0 {
		vocab = 500
	}
	embDim := cfg.EmbDim
	if embDim == 0 {
		embDim = 12
	}
	hidden := cfg.Hidden
	if hidden == 0 {
		hidden = 16
	}
	batch := cfg.BatchSentences
	if batch == 0 {
		batch = 12
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	window := cfg.Window
	if window == 0 {
		window = 6
	}
	res, err := trainer.RunSeq(trainer.SeqJob{
		Workers:   cfg.Workers,
		Steps:     cfg.Steps,
		Window:    window,
		Vocab:     vocab,
		EmbDim:    embDim,
		Hidden:    hidden,
		LR:        lr,
		Vertical:  cfg.Vertical,
		Seed:      cfg.Seed,
		DataSeed:  cfg.Seed + 1,
		Text:      cfg.Text,
		TextBatch: batch,
		Data: data.Config{
			VocabSize:      vocab,
			BatchSentences: batch,
			MaxSeqLen:      window + 3,
			MinSeqLen:      window + 1,
			ZipfS:          1.6,
			ZipfV:          3,
		},
		OverTCP:    cfg.OverTCP,
		ChunkBytes: cfg.ChunkBytes,
	})
	if err != nil {
		return nil, err
	}
	out := &TrainResult{
		Losses:        res.Losses,
		Accuracies:    res.Accuracies,
		TokensTrained: res.TokensTrained,
		CommBytes:     res.Comm.PayloadBytes,
		CommMessages:  res.Comm.Messages,
		CommPerOp:     perOpTraffic(res.CommPerOp),
	}
	if n := len(res.Losses); n > 0 {
		out.FinalPPL = perplexity(res.Losses[n-1])
	}
	return out, nil
}

// Train runs real distributed training and returns the loss curve.
func Train(cfg TrainConfig) (*TrainResult, error) {
	job, err := cfg.job()
	if err != nil {
		return nil, err
	}
	if cfg.ResumeFrom != "" {
		ckpt, err := checkpoint.LoadFile(cfg.ResumeFrom)
		if err != nil {
			return nil, err
		}
		job.Model.InitEmbedding = ckpt.Params["emb"]
		job.Model.InitTrunk = map[string]*tensor.Dense{}
		for name, p := range ckpt.Params {
			if name != "emb" {
				job.Model.InitTrunk[name] = p
			}
		}
		job.SkipBatches = ckpt.Step
	}
	if cfg.Elastic {
		return trainElastic(cfg, job)
	}
	job.Trace = cfg.TracePath != ""
	res, err := trainer.Run(job)
	if err != nil {
		return nil, err
	}
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return nil, fmt.Errorf("embrace: trace output: %w", err)
		}
		title := fmt.Sprintf("%s (%d workers, real execution)", job.Strategy, job.Workers)
		if err := trace.ExportRecorders(f, title, res.Traces); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if cfg.CheckpointPath != "" {
		ckpt := &checkpoint.Checkpoint{
			Step:   job.SkipBatches + job.Steps,
			Params: map[string]*tensor.Dense{"emb": res.Embedding},
		}
		for _, p := range res.Trunk.Params() {
			ckpt.Params[p.Name] = p.Tensor
		}
		if err := checkpoint.SaveFile(cfg.CheckpointPath, ckpt); err != nil {
			return nil, err
		}
	}
	out := &TrainResult{
		Losses:        res.Losses,
		Accuracies:    res.Accuracies,
		TokensTrained: res.TokensTrained,
		CommBytes:     res.Comm.PayloadBytes,
		CommMessages:  res.Comm.Messages,
		CommPerOp:     perOpTraffic(res.CommPerOp),
		FaultsMasked:  res.Comm.FaultsMasked,
		FaultsFatal:   res.Comm.FaultsFatal,
		PhaseSeconds:  res.PhaseSeconds,
	}
	if n := len(res.Losses); n > 0 {
		out.FinalPPL = perplexity(res.Losses[n-1])
	}
	return out, nil
}

// trainElastic runs the elastic branch of Train: supervised crash–shrink–
// rejoin execution with the epoch segmentation reported in the result. Like
// trainer.RunElastic, a run that exhausts its recovery budget returns the
// salvaged partial TrainResult ALONGSIDE the error.
func trainElastic(cfg TrainConfig, job trainer.Job) (*TrainResult, error) {
	if cfg.TracePath != "" {
		return nil, fmt.Errorf("embrace: TracePath is incompatible with Elastic (the supervisor rebuilds worlds mid-run)")
	}
	ej := trainer.ElasticJob{
		Job:             job,
		CheckpointEvery: cfg.ElasticCheckpointEvery,
		Rejoin:          cfg.ElasticRejoin,
		RejoinAfter:     cfg.ElasticRejoinAfter,
	}
	if cfg.CrashStep > 0 {
		seed := cfg.ChaosSeed
		if seed == 0 {
			seed = 1
		}
		plan, err := trainer.CrashPlan(seed, cfg.CrashRank, cfg.CrashStep)
		if err != nil {
			return nil, err
		}
		if job.Strategy != strategies.EmbRace {
			// The baselines never gather tokens; pin the crash to their
			// first wire op, the embedding-gradient collective.
			tag, err := collective.TagOf(strategies.OpEmbGrad, cfg.CrashStep)
			if err != nil {
				return nil, err
			}
			plan.Rules[0].Match = func(pt comm.FaultPoint) bool { return pt.Tag == tag }
		}
		ej.Chaos = &plan
	}
	res, runErr := trainer.RunElastic(ej)
	if res == nil {
		return nil, runErr
	}
	out := &TrainResult{
		Losses:        res.Losses,
		Accuracies:    res.Accuracies,
		TokensTrained: res.TokensTrained,
		CommBytes:     res.Comm.PayloadBytes,
		CommMessages:  res.Comm.Messages,
		CommPerOp:     perOpTraffic(res.CommPerOp),
		FaultsMasked:  res.Comm.FaultsMasked,
		FaultsFatal:   res.Comm.FaultsFatal,
		Recoveries:    res.Recoveries,
	}
	for _, ep := range res.Epochs {
		out.Elastic = append(out.Elastic, ElasticEpoch{
			Epoch:           ep.Epoch,
			Workers:         ep.Workers,
			StartStep:       ep.StartStep,
			EndStep:         ep.EndStep,
			End:             ep.End,
			Crashed:         ep.Crashed,
			RecoverySeconds: ep.RecoverySeconds,
		})
	}
	if n := len(res.Losses); n > 0 {
		out.FinalPPL = perplexity(res.Losses[n-1])
	}
	if runErr != nil {
		return out, runErr
	}
	if cfg.CheckpointPath != "" {
		ckpt := &checkpoint.Checkpoint{
			Step:   job.SkipBatches + job.Steps,
			Params: map[string]*tensor.Dense{"emb": res.Embedding},
		}
		for _, p := range res.Trunk.Params() {
			ckpt.Params[p.Name] = p.Tensor
		}
		if err := checkpoint.SaveFile(cfg.CheckpointPath, ckpt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func perplexity(loss float64) float64 { return math.Exp(loss) }

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

// ExperimentIDs lists the regenerable tables and figures.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the human title of an experiment id.
func ExperimentTitle(id string) (string, error) { return experiments.Title(id) }

// RunExperiment regenerates one table or figure, writing paper-style rows.
func RunExperiment(id string, w io.Writer) error { return experiments.Run(id, w) }

// RunExperimentJSON regenerates one table or figure as structured JSON for
// plotting scripts and dashboards.
func RunExperimentJSON(id string, w io.Writer) error { return experiments.RunJSON(id, w) }

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(w io.Writer) error { return experiments.RunAll(w) }

// CommCost holds the paper's Table-2 analytic communication overheads for
// one sparse-tensor aggregation, in seconds.
type CommCost struct {
	AllToAll, AllReduce, PS, AllGather float64
}

// EstimateCommCost evaluates the Table-2 formulas: aggregating a tensor of
// denseMB megabytes with gradient density alpha across `workers` workers on
// `nodes` nodes at linkGbps per-link bandwidth. Useful for capacity planning
// before running the full simulator.
func EstimateCommCost(alpha, denseMB float64, workers, nodes int, linkGbps float64) (CommCost, error) {
	if alpha < 0 || alpha > 1 {
		return CommCost{}, fmt.Errorf("embrace: alpha %g out of [0,1]", alpha)
	}
	if denseMB <= 0 || workers <= 0 || nodes <= 0 || linkGbps <= 0 {
		return CommCost{}, fmt.Errorf("embrace: parameters must be positive")
	}
	m := denseMB * 1e6
	b := linkGbps / 8 * 1e9
	const beta = 15e-6
	return CommCost{
		AllToAll:  simnet.AllToAllCost(alpha, m, workers, b, beta),
		AllReduce: simnet.AllReduceCost(m, workers, b, beta),
		PS:        simnet.PSCost(alpha, m, workers, nodes, b, beta),
		AllGather: simnet.AllGatherCost(alpha, m, workers, b, beta),
	}, nil
}
