// Benchmarks regenerating each of the paper's tables and figures (one bench
// per artifact, the regeneration entry points EXPERIMENTS.md indexes), plus
// micro-benchmarks of the communication substrates EmbRace is built from.
package embrace_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"embrace"
	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/compress"
	"embrace/internal/coord"
	"embrace/internal/sched"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// benchExperiment runs one experiment harness per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := embrace.RunExperiment(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ModelSizes(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2CommCosts(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkTable3GradientSizes(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkFigure1SparseMovement(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFigure4SparsitySweep(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFigure6Timelines(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFigure7EndToEnd(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFigure8ComputationStall(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFigure9Ablation(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFigure10Scaling(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFigure11Convergence(b *testing.B)     { benchExperiment(b, "fig11") }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkRingAllReduce8x64K(b *testing.B) {
	const ranks, elems = 8, 65536
	b.SetBytes(int64(elems * tensor.BytesPerElem))
	for i := 0; i < b.N; i++ {
		err := comm.RunRanks(ranks, func(t comm.Transport) error {
			buf := make([]float32, elems)
			return collective.NewCommunicator(t).AllReduce("bench/allreduce", 0, buf)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchAllReduce64MB times a 64 MB dense AllReduce across a persistent
// 4-rank world. Each rank runs one untimed warm-up exchange, all ranks
// rendezvous, and only then does the timed region begin — so allocs/op
// reflects steady state, not world setup.
func benchAllReduce64MB(b *testing.B, chunkBytes int, op func(t comm.Transport, cm *collective.Communicator, buf []float32) error) {
	b.Helper()
	const ranks = 4
	const elems = (64 << 20) / tensor.BytesPerElem
	b.SetBytes(64 << 20)
	b.ReportAllocs()
	ready := make(chan struct{}, ranks)
	start := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- comm.RunRanks(ranks, func(t comm.Transport) error {
			cm := collective.NewCommunicator(t, collective.WithChunkBytes(chunkBytes))
			buf := make([]float32, elems)
			if err := op(t, cm, buf); err != nil {
				return err
			}
			ready <- struct{}{}
			<-start
			for i := 0; i < b.N; i++ {
				if err := op(t, cm, buf); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	for i := 0; i < ranks; i++ {
		<-ready
	}
	b.ResetTimer()
	close(start)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCommunicatorAllReduce64MB exercises the stateful Communicator
// with pooled scratch buffers reused across calls, at the same message
// framing as the legacy path (no chunking) so allocs/op isolates pooling.
func BenchmarkCommunicatorAllReduce64MB(b *testing.B) {
	benchAllReduce64MB(b, -1, func(_ comm.Transport, cm *collective.Communicator, buf []float32) error {
		return cm.AllReduce("bench/allreduce", 0, buf)
	})
}

// BenchmarkCommunicatorAllReduce64MBChunked adds 1 MB segment pipelining on
// top of pooling: many more (boxed) messages per op, but segments overlap
// combine with transfer.
func BenchmarkCommunicatorAllReduce64MBChunked(b *testing.B) {
	benchAllReduce64MB(b, 1<<20, func(_ comm.Transport, cm *collective.Communicator, buf []float32) error {
		return cm.AllReduce("bench/allreduce", 0, buf)
	})
}

// BenchmarkColdCommunicatorAllReduce64MB runs the identical exchange through
// a throwaway Communicator (cold buffer pool) built on every call — the cost
// the deleted legacy free functions paid; compare allocs/op against
// BenchmarkCommunicatorAllReduce64MB.
func BenchmarkColdCommunicatorAllReduce64MB(b *testing.B) {
	benchAllReduce64MB(b, -1, func(t comm.Transport, _ *collective.Communicator, buf []float32) error {
		return collective.NewCommunicator(t).AllReduce("bench/allreduce", 0, buf)
	})
}

func BenchmarkAllToAll8Ranks(b *testing.B) {
	const ranks, elems = 8, 8192
	b.SetBytes(int64(elems * tensor.BytesPerElem))
	for i := 0; i < b.N; i++ {
		err := comm.RunRanks(ranks, func(t comm.Transport) error {
			send := make([][]float32, ranks)
			for p := range send {
				send[p] = make([]float32, elems/ranks)
			}
			_, err := collective.AllToAllVia(collective.NewCommunicator(t), "bench/alltoall", 0, send)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseAllGather8Ranks(b *testing.B) {
	const ranks, rows, dim = 8, 512, 64
	locals := make([]*tensor.Sparse, ranks)
	rng := rand.New(rand.NewSource(1))
	for r := range locals {
		idx := make([]int64, rows)
		vals := make([]float32, rows*dim)
		for i := range idx {
			idx[i] = int64(rng.Intn(8192))
		}
		s, err := tensor.NewSparse(8192, dim, idx, vals)
		if err != nil {
			b.Fatal(err)
		}
		locals[r] = s
	}
	b.SetBytes(int64(locals[0].SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := comm.RunRanks(ranks, func(t comm.Transport) error {
			_, err := collective.NewCommunicator(t).SparseAllGather("bench/sparse-ag", 0, locals[t.Rank()])
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoalesce(b *testing.B) {
	const rows, dim = 4096, 64
	rng := rand.New(rand.NewSource(2))
	idx := make([]int64, rows)
	vals := make([]float32, rows*dim)
	for i := range idx {
		idx[i] = int64(rng.Intn(1024)) // heavy duplication
	}
	s, err := tensor.NewSparse(65536, dim, idx, vals)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Coalesce()
	}
}

func BenchmarkVerticalSplit(b *testing.B) {
	const rows, dim = 4096, 64
	rng := rand.New(rand.NewSource(3))
	idx := make([]int64, rows)
	vals := make([]float32, rows*dim)
	for i := range idx {
		idx[i] = int64(rng.Intn(8192))
	}
	g, err := tensor.NewSparse(65536, dim, idx, vals)
	if err != nil {
		b.Fatal(err)
	}
	next := make([]int64, 2048)
	for i := range next {
		next[i] = int64(rng.Intn(8192))
	}
	nextU := tensor.UniqueInt64(next)
	cur := g.UniqueIndices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.VerticalSplit(g, cur, nextU)
	}
}

func BenchmarkRealTrainingStepEmbRace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := embrace.Train(embrace.TrainConfig{
			Strategy: embrace.EmbRace,
			Sched:    embrace.Sched2D,
			Workers:  4,
			Steps:    2,
			Vocab:    500,
			EmbDim:   16,
			Hidden:   16,
			Adam:     true,
			Seed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRecorderSpan measures the cost of one Begin/End pair on a
// live recorder — the per-span overhead tracing adds to an instrumented
// phase.
func BenchmarkTraceRecorderSpan(b *testing.B) {
	r := trace.NewRecorder(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Begin(trace.TrackCompute, "fp", i).End()
		if i%(1<<16) == 0 {
			b.StopTimer()
			r.Reset() // bound the span slice so memory doesn't skew timing
			b.StartTimer()
		}
	}
}

// BenchmarkTraceRecorderDisabled measures the same pair on a nil recorder —
// the cost a tracing-off run pays at every instrumentation point, which must
// stay at pointer-check noise level.
func BenchmarkTraceRecorderDisabled(b *testing.B) {
	var r *trace.Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Begin(trace.TrackCompute, "fp", i).End()
	}
}

func BenchmarkPartitionAblation(b *testing.B) { benchExperiment(b, "partition") }

func BenchmarkGiantModelExtension(b *testing.B) { benchExperiment(b, "giant") }

func BenchmarkHierarchicalAllReduce8x64K(b *testing.B) {
	const ranks, elems = 8, 65536
	b.SetBytes(int64(elems * tensor.BytesPerElem))
	for i := 0; i < b.N; i++ {
		err := comm.RunRanks(ranks, func(t comm.Transport) error {
			buf := make([]float32, elems)
			return collective.NewCommunicator(t).HierarchicalAllReduce("bench/hier", 0, 4, buf)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRingAllReduce4x16K(b *testing.B) {
	const ranks, elems = 4, 16384
	b.SetBytes(int64(elems * tensor.BytesPerElem))
	for i := 0; i < b.N; i++ {
		err := comm.RunRanksTCP(ranks, func(t comm.Transport) error {
			buf := make([]float32, elems)
			return collective.NewCommunicator(t).AllReduce("bench/allreduce", 0, buf)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordNegotiation(b *testing.B) {
	const ranks, ops = 4, 16
	for i := 0; i < b.N; i++ {
		err := comm.RunRanks(ranks, func(t comm.Transport) error {
			c, err := coord.NewOn(collective.NewCommunicator(t), "bench", ops)
			if err != nil {
				return err
			}
			go func() {
				for k := 0; k < ops; k++ {
					_ = c.Announce(coord.Op{ID: fmt.Sprint(k), Priority: k % 3})
				}
			}()
			for {
				_, ok, err := c.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 65536)
	for i := range src {
		src[i] = rng.Float32()
	}
	c := compress.TopK{K: 1024}
	b.SetBytes(int64(len(src) * tensor.BytesPerElem))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ8Compress(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 65536)
	for i := range src {
		src[i] = rng.Float32()
	}
	b.SetBytes(int64(len(src) * tensor.BytesPerElem))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (compress.Q8{}).Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

// The chaos wrapper's ping-pong overhead benchmarks
// (BenchmarkChaosOverheadBare / BenchmarkChaosOverheadEmptyPlan) live in
// internal/comm, next to the transport they price.

// BenchmarkChaosOverheadMaskedAllReduce prices the full self-healing stack
// under active fault injection: an 8-rank AllReduce over the standard
// maskable plan, faults masked by retry and sequence framing.
func BenchmarkChaosOverheadMaskedAllReduce(b *testing.B) {
	const ranks, elems = 8, 65536
	b.SetBytes(int64(elems * tensor.BytesPerElem))
	for i := 0; i < b.N; i++ {
		err := comm.RunRanksChaos(ranks, comm.MaskableChaosPlan(int64(i+1)), func(t comm.Transport) error {
			buf := make([]float32, elems)
			return collective.NewCommunicator(t).AllReduce("bench/allreduce", 0, buf)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandwidthSensitivity(b *testing.B) { benchExperiment(b, "bandwidth") }

func BenchmarkBatchSensitivity(b *testing.B) { benchExperiment(b, "batch") }

func BenchmarkFigure5DependencyGraph(b *testing.B) { benchExperiment(b, "fig5") }
